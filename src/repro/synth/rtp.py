"""Synthetic real-time electricity price (ENGIE Resources substitute).

The paper's Fig. 5 shows a 96-hour ENGIE real-time price trace in the
50–130 $/MWh band that is *positively correlated with network traffic*
(both peak in the evening). We reproduce that joint structure: the price is
a base diurnal curve plus a coupling term driven by the (normalised) system
load, plus AR(1) noise and occasional scarcity spikes.

Prices are generated in $/MWh to match the feed convention and converted to
the library's internal $/kWh via :func:`repro.units.mwh_price_to_kwh`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, DataError
from ..timeutils import SlotCalendar, diurnal_harmonic
from ..units import mwh_price_to_kwh


@dataclass(frozen=True)
class RtpConfig:
    """Parameters of the synthetic real-time price model.

    Attributes
    ----------
    base_price_mwh:
        Overnight floor price, $/MWh.
    diurnal_amplitude_mwh:
        Amplitude of the deterministic evening-peaking cycle.
    peak_hour:
        Hour of day of the deterministic price peak.
    load_coupling_mwh:
        $/MWh added per unit of normalised load — creates the load–price
        correlation the paper measures.
    noise_persistence / noise_volatility_mwh:
        AR(1) parameters of the additive noise.
    spike_probability:
        Per-hour probability of a scarcity spike.
    spike_scale_mwh:
        Mean (exponential) magnitude of a spike.
    price_floor_mwh / price_cap_mwh:
        Hard clamps keeping the trace in a realistic band.
    """

    base_price_mwh: float = 55.0
    diurnal_amplitude_mwh: float = 35.0
    peak_hour: float = 20.0
    load_coupling_mwh: float = 30.0
    noise_persistence: float = 0.7
    noise_volatility_mwh: float = 6.0
    spike_probability: float = 0.01
    spike_scale_mwh: float = 40.0
    price_floor_mwh: float = 20.0
    price_cap_mwh: float = 400.0

    def __post_init__(self) -> None:
        if self.base_price_mwh <= 0:
            raise ConfigError("base_price_mwh must be positive")
        if self.diurnal_amplitude_mwh < 0 or self.load_coupling_mwh < 0:
            raise ConfigError("amplitude/coupling must be non-negative")
        if not 0.0 <= self.noise_persistence < 1.0:
            raise ConfigError("noise_persistence must be in [0, 1)")
        if self.noise_volatility_mwh < 0:
            raise ConfigError("noise_volatility_mwh must be non-negative")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ConfigError("spike_probability must be in [0, 1]")
        if self.price_floor_mwh <= 0 or self.price_cap_mwh <= self.price_floor_mwh:
            raise ConfigError("price_floor/cap must satisfy 0 < floor < cap")


@dataclass(frozen=True)
class PriceTrace:
    """Hourly real-time prices in both feed and internal conventions."""

    price_mwh: np.ndarray

    def __post_init__(self) -> None:
        if len(self.price_mwh) and self.price_mwh.min() <= 0:
            raise DataError("prices must be strictly positive")

    def __len__(self) -> int:
        return len(self.price_mwh)

    @property
    def price_kwh(self) -> np.ndarray:
        """Prices converted to the library's $/kWh convention."""
        return self.price_mwh / 1000.0

    def slice(self, start: int, stop: int) -> "PriceTrace":
        """A sub-trace covering slots [start, stop)."""
        if not 0 <= start <= stop <= len(self):
            raise DataError(
                f"invalid slice [{start}, {stop}) for trace of length {len(self)}"
            )
        return PriceTrace(price_mwh=self.price_mwh[start:stop])


class RtpGenerator:
    """Generates :class:`PriceTrace` series, optionally coupled to a load."""

    def __init__(
        self,
        config: RtpConfig | None = None,
        *,
        calendar: SlotCalendar | None = None,
    ) -> None:
        self.config = config or RtpConfig()
        self.calendar = calendar or SlotCalendar()

    def generate(
        self,
        n_hours: int,
        rng: np.random.Generator,
        *,
        load_rate: np.ndarray | None = None,
    ) -> PriceTrace:
        """Generate ``n_hours`` of prices.

        ``load_rate`` (values in [0, 1], e.g. from
        :class:`~repro.synth.traffic.TrafficTrace`) adds the load-coupled
        component; omit it for a purely diurnal price.
        """
        if n_hours < 0:
            raise ConfigError(f"n_hours must be non-negative, got {n_hours}")
        cfg = self.config
        slots = np.arange(n_hours)
        hod = np.asarray(self.calendar.hour_of_day(slots), dtype=float)

        price = cfg.base_price_mwh + cfg.diurnal_amplitude_mwh * diurnal_harmonic(
            hod, cfg.peak_hour, sharpness=2.0
        )

        if load_rate is not None:
            load = np.asarray(load_rate, dtype=float)
            if load.shape != (n_hours,):
                raise DataError(
                    f"load_rate shape {load.shape} does not match n_hours={n_hours}"
                )
            price = price + cfg.load_coupling_mwh * np.clip(load, 0.0, 1.0)

        noise = np.empty(n_hours)
        state = 0.0
        innovation_std = cfg.noise_volatility_mwh * np.sqrt(
            max(1.0 - cfg.noise_persistence**2, 1e-9)
        )
        for t in range(n_hours):
            state = cfg.noise_persistence * state + rng.normal(0.0, innovation_std)
            noise[t] = state
        price = price + noise

        spikes = rng.random(n_hours) < cfg.spike_probability
        price = price + spikes * rng.exponential(cfg.spike_scale_mwh, size=n_hours)

        price = np.clip(price, cfg.price_floor_mwh, cfg.price_cap_mwh)
        return PriceTrace(price_mwh=price)


def price_to_internal(trace: PriceTrace) -> np.ndarray:
    """Convert a trace to $/kWh using the shared units helper."""
    return np.array([mwh_price_to_kwh(p) for p in trace.price_mwh])
