"""Named presets: the 12-station / 12-hub fleet used throughout the paper.

The paper's evaluation uses twelve campus charging stations (Table III
reports twelve hubs). This module pins down a reproducible fleet: each hub
pairs one charging station with a site profile (urban rooftop-PV vs rural
PV+WT, per the paper's Fig. 6 discussion of urban/rural deployment).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..rng import RngFactory

#: Fleet size used in the paper's evaluation.
DEFAULT_FLEET_SIZE = 12


@dataclass(frozen=True)
class HubSite:
    """Site-level description of one ECT-Hub.

    This is a lightweight record consumed by :mod:`repro.hub.scenario`,
    which expands it into full equipment configs.

    Attributes
    ----------
    hub_id:
        Fleet index, also the paired charging-station id.
    kind:
        ``"urban"`` (rooftop PV only, denser traffic) or ``"rural"``
        (PV + wind turbine, lighter traffic).
    pv_kw:
        Rated PV capacity (0 disables PV).
    wt_kw:
        Rated wind-turbine capacity (0 disables WT).
    traffic_scale:
        Multiplier on the traffic generator's volume (urban > rural).
    n_base_stations:
        Number of co-located BSs sharing the hub's battery point.
    """

    hub_id: int
    kind: str
    pv_kw: float
    wt_kw: float
    traffic_scale: float
    n_base_stations: int

    def __post_init__(self) -> None:
        if self.hub_id < 0:
            raise ConfigError(f"hub_id must be non-negative, got {self.hub_id}")
        if self.kind not in ("urban", "rural"):
            raise ConfigError(f"kind must be 'urban' or 'rural', got {self.kind!r}")
        if self.pv_kw < 0 or self.wt_kw < 0:
            raise ConfigError("pv_kw and wt_kw must be non-negative")
        if self.traffic_scale <= 0:
            raise ConfigError("traffic_scale must be positive")
        if self.n_base_stations <= 0:
            raise ConfigError("n_base_stations must be positive")


def default_fleet(
    n_hubs: int = DEFAULT_FLEET_SIZE,
    *,
    rng_factory: RngFactory | None = None,
    urban_fraction: float = 0.5,
) -> list[HubSite]:
    """The reproducible hub fleet.

    Even-indexed hubs are urban (rooftop PV, heavier traffic, 2–3 BSs);
    odd-indexed hubs are rural (PV + WT, lighter traffic, 1–2 BSs), with
    mild seeded jitter on plant sizes so hubs are heterogeneous like the
    paper's Table III rows.
    """
    if n_hubs <= 0:
        raise ConfigError(f"n_hubs must be positive, got {n_hubs}")
    if not 0.0 <= urban_fraction <= 1.0:
        raise ConfigError(f"urban_fraction must be in [0, 1], got {urban_fraction}")

    factory = rng_factory or RngFactory(seed=0)
    rng = factory.stream("catalog/fleet")
    n_urban = int(round(urban_fraction * n_hubs))

    sites: list[HubSite] = []
    for hub_id in range(n_hubs):
        urban = hub_id < n_urban if n_urban else False
        # Interleave urban/rural so small fleets still mix both kinds.
        urban = (hub_id % 2 == 0) if 0 < n_urban < n_hubs else urban
        if urban:
            sites.append(
                HubSite(
                    hub_id=hub_id,
                    kind="urban",
                    pv_kw=float(np.clip(rng.normal(20.0, 4.0), 8.0, 35.0)),
                    wt_kw=0.0,
                    traffic_scale=float(np.clip(rng.normal(1.2, 0.15), 0.8, 1.6)),
                    n_base_stations=int(rng.integers(2, 4)),
                )
            )
        else:
            sites.append(
                HubSite(
                    hub_id=hub_id,
                    kind="rural",
                    pv_kw=float(np.clip(rng.normal(30.0, 6.0), 10.0, 50.0)),
                    wt_kw=float(np.clip(rng.normal(25.0, 6.0), 8.0, 45.0)),
                    traffic_scale=float(np.clip(rng.normal(0.7, 0.1), 0.4, 1.0)),
                    n_base_stations=int(rng.integers(1, 3)),
                )
            )
    return sites
