"""``repro.synth`` — synthetic replacements for the paper's datasets.

Each generator substitutes one external/proprietary data source (see
DESIGN.md §2 for the substitution table): solar + wind (NSRDB), real-time
prices (ENGIE), cellular traffic (city-scale traces), EV charging sessions
with latent causal strata (the proprietary campus dataset), and the road/BS
geography of Fig. 1.
"""

from .catalog import DEFAULT_FLEET_SIZE, HubSite, default_fleet
from .charging import (
    ChargingBehaviorModel,
    ChargingConfig,
    ChargingLog,
    StationProfile,
    Stratum,
)
from .roads import (
    RoadNetwork,
    RoadNetworkConfig,
    build_road_network,
    near_road_fraction,
    place_stations,
    point_segment_distance,
)
from .rtp import PriceTrace, RtpConfig, RtpGenerator
from .solar import SolarConfig, clear_sky_ghi, generate_irradiance
from .traffic import TrafficConfig, TrafficGenerator, TrafficTrace
from .weather import WeatherConfig, WeatherGenerator, WeatherTrace
from .wind import WindConfig, generate_wind_speed, weibull_mean

__all__ = [
    "DEFAULT_FLEET_SIZE",
    "ChargingBehaviorModel",
    "ChargingConfig",
    "ChargingLog",
    "HubSite",
    "PriceTrace",
    "RoadNetwork",
    "RoadNetworkConfig",
    "RtpConfig",
    "RtpGenerator",
    "SolarConfig",
    "StationProfile",
    "Stratum",
    "TrafficConfig",
    "TrafficGenerator",
    "TrafficTrace",
    "WeatherConfig",
    "WeatherGenerator",
    "WeatherTrace",
    "WindConfig",
    "build_road_network",
    "clear_sky_ghi",
    "default_fleet",
    "generate_irradiance",
    "generate_wind_speed",
    "near_road_fraction",
    "place_stations",
    "point_segment_distance",
    "weibull_mean",
]
