"""Synthetic cellular network traffic (city-scale trace substitute).

The paper uses the public city-scale cellular dataset of Chen et al. [22]
(its Fig. 5 shows four days of traffic in the 20–160 GB/h band, peaking at
night alongside the electricity price). We reproduce the consumed features:

* a double-peak diurnal cycle (midday business peak + larger evening peak,
  so load is high when RTP is high, matching the paper's measurement that
  "load factors and electricity prices peak during the night");
* a weekday/weekend level shift;
* multiplicative AR(1) noise for realistic short-term burstiness.

Traffic maps to the base-station load rate ``α_t`` (Eq. 1) by normalising
against a configurable fleet capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, DataError
from ..timeutils import SlotCalendar, diurnal_harmonic


@dataclass(frozen=True)
class TrafficConfig:
    """Parameters of the synthetic traffic model.

    Attributes
    ----------
    base_gb:
        Overnight minimum traffic (GB per hour).
    midday_peak_gb:
        Additional traffic at the midday peak.
    evening_peak_gb:
        Additional traffic at the evening peak (the dominant one).
    midday_peak_hour / evening_peak_hour:
        Peak positions.
    weekend_factor:
        Multiplier applied on Saturdays/Sundays.
    noise_persistence / noise_volatility:
        AR(1) parameters of the multiplicative noise.
    capacity_gb:
        Traffic level mapping to load rate α = 1.
    """

    base_gb: float = 25.0
    midday_peak_gb: float = 60.0
    evening_peak_gb: float = 85.0
    midday_peak_hour: float = 12.0
    evening_peak_hour: float = 21.0
    weekend_factor: float = 0.85
    noise_persistence: float = 0.6
    noise_volatility: float = 0.08
    capacity_gb: float = 170.0

    def __post_init__(self) -> None:
        for name in ("base_gb", "midday_peak_gb", "evening_peak_gb", "capacity_gb"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if not 0.0 < self.weekend_factor <= 1.5:
            raise ConfigError(f"weekend_factor must be in (0, 1.5], got {self.weekend_factor}")
        if not 0.0 <= self.noise_persistence < 1.0:
            raise ConfigError("noise_persistence must be in [0, 1)")
        if self.noise_volatility < 0:
            raise ConfigError("noise_volatility must be non-negative")


@dataclass(frozen=True)
class TrafficTrace:
    """Hourly traffic volumes and the implied base-station load rate."""

    volume_gb: np.ndarray
    load_rate: np.ndarray

    def __post_init__(self) -> None:
        if len(self.volume_gb) != len(self.load_rate):
            raise DataError("volume_gb and load_rate must have equal length")
        if len(self.load_rate) and (
            self.load_rate.min() < 0.0 or self.load_rate.max() > 1.0
        ):
            raise DataError("load_rate must lie in [0, 1]")

    def __len__(self) -> int:
        return len(self.volume_gb)

    def slice(self, start: int, stop: int) -> "TrafficTrace":
        """A sub-trace covering slots [start, stop)."""
        if not 0 <= start <= stop <= len(self):
            raise DataError(
                f"invalid slice [{start}, {stop}) for trace of length {len(self)}"
            )
        return TrafficTrace(
            volume_gb=self.volume_gb[start:stop],
            load_rate=self.load_rate[start:stop],
        )


class TrafficGenerator:
    """Generates :class:`TrafficTrace` series."""

    def __init__(
        self,
        config: TrafficConfig | None = None,
        *,
        calendar: SlotCalendar | None = None,
    ) -> None:
        self.config = config or TrafficConfig()
        self.calendar = calendar or SlotCalendar()

    def expected_profile(self, n_hours: int) -> np.ndarray:
        """Noise-free expected traffic (GB/h) — the deterministic backbone."""
        cfg = self.config
        slots = np.arange(n_hours)
        hod = np.asarray(self.calendar.hour_of_day(slots), dtype=float)
        profile = (
            cfg.base_gb
            + cfg.midday_peak_gb * diurnal_harmonic(hod, cfg.midday_peak_hour, sharpness=3.0)
            + cfg.evening_peak_gb * diurnal_harmonic(hod, cfg.evening_peak_hour, sharpness=2.0)
        )
        weekend = np.asarray(self.calendar.is_weekend(slots))
        return np.where(weekend, profile * cfg.weekend_factor, profile)

    def generate(self, n_hours: int, rng: np.random.Generator) -> TrafficTrace:
        """Expected profile with multiplicative AR(1) noise, mapped to load."""
        if n_hours < 0:
            raise ConfigError(f"n_hours must be non-negative, got {n_hours}")
        cfg = self.config
        profile = self.expected_profile(n_hours)

        noise = np.empty(n_hours)
        state = 0.0
        innovation_std = cfg.noise_volatility * np.sqrt(
            max(1.0 - cfg.noise_persistence**2, 1e-9)
        )
        for t in range(n_hours):
            state = cfg.noise_persistence * state + rng.normal(0.0, innovation_std)
            noise[t] = state
        volume = np.maximum(profile * np.exp(noise), 0.0)
        load = np.clip(volume / cfg.capacity_gb, 0.0, 1.0)
        return TrafficTrace(volume_gb=volume, load_rate=load)
