"""Synthetic solar irradiance (NSRDB substitute).

The paper pulls solar radiation from the National Solar Radiation Database
[25]. Offline we generate global horizontal irradiance (GHI) from solar
geometry plus a stochastic cloud process:

* **Clear-sky GHI** — solar declination (Cooper's formula), hour angle, and
  solar elevation give ``GHI_clear = S · max(0, sin el)^1.15`` with
  ``S ≈ 1000 W/m²``, the standard Haurwitz-style clear-sky shape.
* **Clouds** — an AR(1) cloud-cover process in [0, 1]; transmittance follows
  the Kasten–Czeplak relation ``1 − 0.75 c³``.

This preserves what the downstream system consumes: a strong diurnal cycle,
zero output at night, and day-to-day volatility (paper Fig. 2 emphasises
renewable volatility).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..timeutils import DAYS_PER_YEAR, SlotCalendar
from ..units import HOURS_PER_DAY


@dataclass(frozen=True)
class SolarConfig:
    """Parameters of the synthetic irradiance model.

    Attributes
    ----------
    latitude_deg:
        Site latitude; drives seasonal sun-height variation.
    clear_sky_peak_w_m2:
        Irradiance at a solar elevation of 90° under clear sky.
    cloud_persistence:
        AR(1) coefficient of the cloud process (0 = white noise, →1 = slow
        synoptic systems).
    cloud_volatility:
        Innovation scale of the cloud process.
    mean_cloud_cover:
        Long-run mean cloud cover in [0, 1].
    """

    latitude_deg: float = 31.0
    clear_sky_peak_w_m2: float = 1000.0
    cloud_persistence: float = 0.92
    cloud_volatility: float = 0.12
    mean_cloud_cover: float = 0.35

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude_deg <= 90.0:
            raise ConfigError(f"latitude_deg must be in [-90, 90], got {self.latitude_deg}")
        if self.clear_sky_peak_w_m2 <= 0:
            raise ConfigError("clear_sky_peak_w_m2 must be positive")
        if not 0.0 <= self.cloud_persistence < 1.0:
            raise ConfigError("cloud_persistence must be in [0, 1)")
        if self.cloud_volatility < 0:
            raise ConfigError("cloud_volatility must be non-negative")
        if not 0.0 <= self.mean_cloud_cover <= 1.0:
            raise ConfigError("mean_cloud_cover must be in [0, 1]")


def solar_declination_deg(day_of_year: np.ndarray) -> np.ndarray:
    """Solar declination in degrees (Cooper 1969)."""
    day = np.asarray(day_of_year, dtype=float)
    return 23.45 * np.sin(2.0 * np.pi * (284.0 + day + 1.0) / DAYS_PER_YEAR)


def solar_elevation_sin(
    day_of_year: np.ndarray,
    hour_of_day: np.ndarray,
    latitude_deg: float,
) -> np.ndarray:
    """Sine of the solar elevation angle for each (day, hour) pair."""
    lat = np.deg2rad(latitude_deg)
    dec = np.deg2rad(solar_declination_deg(day_of_year))
    hour_angle = np.deg2rad(15.0 * (np.asarray(hour_of_day, dtype=float) - 12.0))
    return np.sin(lat) * np.sin(dec) + np.cos(lat) * np.cos(dec) * np.cos(hour_angle)


def clear_sky_ghi(
    day_of_year: np.ndarray,
    hour_of_day: np.ndarray,
    config: SolarConfig,
) -> np.ndarray:
    """Clear-sky global horizontal irradiance in W/m²."""
    sin_el = solar_elevation_sin(day_of_year, hour_of_day, config.latitude_deg)
    sin_el = np.maximum(sin_el, 0.0)
    return config.clear_sky_peak_w_m2 * sin_el**1.15


def cloud_cover_process(
    n_hours: int,
    config: SolarConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """AR(1) cloud cover trajectory clipped to [0, 1]."""
    if n_hours < 0:
        raise ConfigError(f"n_hours must be non-negative, got {n_hours}")
    cover = np.empty(n_hours)
    state = config.mean_cloud_cover
    phi = config.cloud_persistence
    for t in range(n_hours):
        noise = rng.normal(0.0, config.cloud_volatility)
        state = config.mean_cloud_cover + phi * (state - config.mean_cloud_cover) + noise
        state = float(np.clip(state, 0.0, 1.0))
        cover[t] = state
    return cover


def cloud_transmittance(cloud_cover: np.ndarray) -> np.ndarray:
    """Kasten–Czeplak transmittance ``1 − 0.75 c³``."""
    cover = np.clip(np.asarray(cloud_cover, dtype=float), 0.0, 1.0)
    return 1.0 - 0.75 * cover**3


def generate_irradiance(
    n_hours: int,
    config: SolarConfig,
    rng: np.random.Generator,
    *,
    calendar: SlotCalendar | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Hourly GHI trace in W/m² plus the underlying cloud cover.

    Returns ``(ghi_w_m2, cloud_cover)``, both of length ``n_hours``.
    """
    calendar = calendar or SlotCalendar()
    slots = np.arange(n_hours)
    doy = calendar.day_of_year(slots)
    hod = calendar.hour_of_day(slots)
    clear = clear_sky_ghi(doy, hod, config)
    cover = cloud_cover_process(n_hours, config, rng)
    return clear * cloud_transmittance(cover), cover


def daylight_hours_mask(
    n_hours: int,
    config: SolarConfig,
    calendar: SlotCalendar | None = None,
) -> np.ndarray:
    """Boolean mask of slots where the sun is above the horizon."""
    calendar = calendar or SlotCalendar()
    slots = np.arange(n_hours)
    sin_el = solar_elevation_sin(
        calendar.day_of_year(slots), calendar.hour_of_day(slots), config.latitude_deg
    )
    return sin_el > 0.0


def peak_sun_hour(config: SolarConfig) -> int:
    """The hour of day at which clear-sky output peaks (solar noon)."""
    return HOURS_PER_DAY // 2
