"""Slot calendar helpers.

The paper divides time into slots ``t_1 … t_T`` (Table I) with hourly
resolution in every figure (Figs. 2, 3, 5, 11 all use hour-of-day axes).
These helpers map a flat slot index onto (day, hour-of-day, day-of-week,
day-of-year) features used by the generators and by the causal model's time
embedding, without pulling in real calendars (synthetic years are 365 days).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import ConfigError
from .units import HOURS_PER_DAY

#: Days in the synthetic year used by seasonal generators.
DAYS_PER_YEAR = 365

#: The four six-hour periods used by the paper's Fig. 12 pie charts.
PERIODS_6H = ((0, 6), (6, 12), (12, 18), (18, 24))

#: Human labels for :data:`PERIODS_6H`, matching the paper's subcaptions.
PERIOD_LABELS = ("00:00-06:00", "06:00-12:00", "12:00-18:00", "18:00-24:00")


@dataclass(frozen=True)
class SlotCalendar:
    """Maps flat hourly slot indices to calendar features.

    Parameters
    ----------
    start_day_of_year:
        Day of year (0-based, 0..364) of slot 0. Lets experiments start a
        trace mid-season.
    start_day_of_week:
        Day of week (0=Monday) of slot 0, for weekly traffic patterns.
    """

    start_day_of_year: int = 0
    start_day_of_week: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.start_day_of_year < DAYS_PER_YEAR:
            raise ConfigError(
                f"start_day_of_year must be in [0, {DAYS_PER_YEAR}), "
                f"got {self.start_day_of_year}"
            )
        if not 0 <= self.start_day_of_week < 7:
            raise ConfigError(
                f"start_day_of_week must be in [0, 7), got {self.start_day_of_week}"
            )

    def hour_of_day(self, slot: np.ndarray | int) -> np.ndarray | int:
        """Hour of day (0..23) for each slot index."""
        return np.asarray(slot) % HOURS_PER_DAY if np.ndim(slot) else int(slot) % HOURS_PER_DAY

    def day_index(self, slot: np.ndarray | int) -> np.ndarray | int:
        """Zero-based day counter since slot 0."""
        if np.ndim(slot):
            return np.asarray(slot) // HOURS_PER_DAY
        return int(slot) // HOURS_PER_DAY

    def day_of_year(self, slot: np.ndarray | int) -> np.ndarray | int:
        """Day of the synthetic 365-day year (0..364) for each slot."""
        day = self.day_index(slot)
        return (day + self.start_day_of_year) % DAYS_PER_YEAR

    def day_of_week(self, slot: np.ndarray | int) -> np.ndarray | int:
        """Day of week (0=Monday .. 6=Sunday) for each slot."""
        day = self.day_index(slot)
        return (day + self.start_day_of_week) % 7

    def is_weekend(self, slot: np.ndarray | int) -> np.ndarray | bool:
        """True where the slot falls on Saturday or Sunday."""
        dow = self.day_of_week(slot)
        if np.ndim(dow):
            return np.asarray(dow) >= 5
        return dow >= 5

    def period_6h(self, slot: np.ndarray | int) -> np.ndarray | int:
        """Index (0..3) of the paper's Fig. 12 six-hour period for each slot."""
        hod = self.hour_of_day(slot)
        if np.ndim(hod):
            return np.asarray(hod) // 6
        return hod // 6


def hours(n_days: int) -> int:
    """Number of hourly slots in ``n_days`` days."""
    if n_days < 0:
        raise ConfigError(f"n_days must be non-negative, got {n_days}")
    return int(n_days) * HOURS_PER_DAY


def hour_angle_fraction(hour_of_day: np.ndarray) -> np.ndarray:
    """Fraction of the day elapsed at each hour, in [0, 1)."""
    return np.asarray(hour_of_day, dtype=float) / HOURS_PER_DAY


def diurnal_harmonic(
    hour_of_day: np.ndarray,
    peak_hour: float,
    *,
    sharpness: float = 1.0,
) -> np.ndarray:
    """A smooth 24 h-periodic bump peaking at ``peak_hour``, range [0, 1].

    Used by the traffic / price / charging-demand generators to shape diurnal
    cycles. ``sharpness`` > 1 narrows the peak (raised-cosine power).
    """
    phase = 2.0 * np.pi * (np.asarray(hour_of_day, dtype=float) - peak_hour) / HOURS_PER_DAY
    base = 0.5 * (1.0 + np.cos(phase))
    return base ** float(sharpness)
