"""The reference backend: numpy ufuncs, byte-identical to the pre-seam engine.

Every elementwise primitive *is* the numpy ufunc it mirrors (a
``staticmethod`` alias, not a wrapper), so dispatching through
:class:`NumpyOps` costs one attribute lookup and executes the exact same
compiled loop — which is how the seam keeps the preset golden exports
byte-identical and the dispatch overhead inside the step-kernel bench's
5% guard. :meth:`NumpyOps.resolve_battery` is the pre-seam fused
kernel's battery block moved verbatim (same ufunc sequence, same ``out=``
buffers, no arithmetic regrouping).
"""

from __future__ import annotations

import numpy as np

from ..energy.battery import CHARGE, DISCHARGE, IDLE
from .base import ArrayOps


class NumpyOps(ArrayOps):
    """Plain-numpy :class:`~repro.backend.base.ArrayOps` (the default)."""

    name = "numpy"
    jit = False

    # Allocation — thin shims that force an explicit dtype.
    @staticmethod
    def empty(shape, dtype=np.float64):
        return np.empty(shape, dtype=dtype)

    @staticmethod
    def zeros(shape, dtype=np.float64):
        return np.zeros(shape, dtype=dtype)

    @staticmethod
    def full(shape, fill_value, dtype=np.float64):
        return np.full(shape, fill_value, dtype=dtype)

    # Elementwise / comparison / logic: direct ufunc aliases.
    add = staticmethod(np.add)
    subtract = staticmethod(np.subtract)
    multiply = staticmethod(np.multiply)
    divide = staticmethod(np.divide)
    negative = staticmethod(np.negative)
    maximum = staticmethod(np.maximum)
    minimum = staticmethod(np.minimum)
    clip = staticmethod(np.clip)
    where = staticmethod(np.where)
    copyto = staticmethod(np.copyto)
    greater = staticmethod(np.greater)
    equal = staticmethod(np.equal)
    not_equal = staticmethod(np.not_equal)
    logical_and = staticmethod(np.logical_and)
    logical_not = staticmethod(np.logical_not)

    # Indexing / reduction.
    flatnonzero = staticmethod(np.flatnonzero)
    argmax = staticmethod(np.argmax)

    @staticmethod
    def count_nonzero(a):
        return int(np.count_nonzero(a))

    @staticmethod
    def bincount(x, weights=None, minlength=0):
        return np.bincount(x, weights=weights, minlength=minlength)

    @staticmethod
    def scatter_add(target, indices, values):
        np.add.at(target, indices, values)

    @staticmethod
    def reduceat_sum(values, starts, axis=0):
        return np.add.reduceat(values, starts, axis=axis)

    @staticmethod
    def quantile_rows(values, q):
        # Axis-vectorized; numpy's per-row results are bit-identical to
        # separate np.quantile(row) calls (the scheduler threshold
        # contract the scalar-equivalence suite relies on).
        return np.quantile(values, q, axis=1)

    @staticmethod
    def segment_prefix_sum(values, bounds):
        # Per-segment cumsum, never a global one: segment-local rounding
        # keeps feeder-closed shard grants bit-identical to the fleet.
        ahead = np.zeros(values.shape[0])
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            ahead[lo + 1 : hi] = np.cumsum(values[lo : hi - 1])
        return ahead

    @staticmethod
    def resolve_battery(kernel, soc, actions, b, applied, p_bp):
        # --- Charge path (BatteryPack._charge): clip the stored energy to
        # the SoC_max headroom; a fully-clipped request degrades to IDLE.
        np.subtract(kernel.soc_max_kwh, soc, out=b.headroom)
        np.maximum(b.headroom, 0.0, out=b.headroom)
        np.add(b.headroom, kernel.soc_eps, out=b.tmp)
        np.greater(kernel.stored_requested, b.tmp, out=b.mask)
        np.copyto(b.stored, kernel.stored_requested)
        np.copyto(b.stored, b.headroom, where=b.mask)
        np.equal(actions, CHARGE, out=b.charging)
        np.greater(b.stored, 0.0, out=b.mask)
        np.logical_and(b.charging, b.mask, out=b.charging)
        np.logical_not(b.charging, out=b.idle_mask)
        np.copyto(b.stored, 0.0, where=b.idle_mask)
        # stored is zero wherever not charging, so the plain divide equals
        # the old where(charging, stored/η, 0) select.
        np.divide(b.stored, kernel.charge_efficiency, out=b.bus_charge_kwh)

        # --- Discharge path (BatteryPack._discharge), both conventions.
        np.subtract(soc, kernel.soc_min_kwh, out=b.available)
        np.maximum(b.available, 0.0, out=b.available)
        np.add(b.available, kernel.soc_eps, out=b.tmp)
        np.greater(kernel.drawn_requested, b.tmp, out=b.mask)
        np.copyto(b.drawn, kernel.drawn_requested)
        np.copyto(b.drawn, b.available, where=b.mask)
        np.equal(actions, DISCHARGE, out=b.discharging)
        np.greater(b.drawn, 0.0, out=b.mask)
        np.logical_and(b.discharging, b.mask, out=b.discharging)
        np.logical_not(b.discharging, out=b.idle_mask)
        np.copyto(b.drawn, 0.0, where=b.idle_mask)
        np.multiply(b.drawn, kernel.bus_per_drawn, out=b.bus_discharge_kwh)

        # Applied action: requested unless the clip degraded it to IDLE.
        np.copyto(applied, IDLE)
        np.copyto(applied, CHARGE, where=b.charging)
        np.copyto(applied, DISCHARGE, where=b.discharging)

        # Battery bus power and the SoC advance.
        np.subtract(b.bus_charge_kwh, b.bus_discharge_kwh, out=p_bp)
        np.divide(p_bp, kernel.dt_h, out=p_bp)
        np.add(soc, b.stored, out=b.new_soc)
        np.subtract(b.new_soc, b.drawn, out=b.new_soc)
