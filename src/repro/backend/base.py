"""The ``ArrayOps`` seam: every hot-path array primitive in one protocol.

The fused fleet kernel (:mod:`repro.fleet.simulation`), the feeder
allocator (:mod:`repro.fleet.grid`), the cost book
(:mod:`repro.fleet.costs`), and the vectorized schedulers never call
``numpy`` directly on their hot paths anymore — they dispatch through an
:class:`ArrayOps` instance resolved once per engine
(:func:`repro.backend.registry.get_backend`). That is what lets a JIT or
GPU backend slot in under the whole spec → assembly → engine spine
without touching the engine code: implement these primitives, register a
name, and every entry point (``api.run``, sweeps, shards, the CLI
``--backend`` flag) can select it.

The contract is deliberately numpy-shaped: elementwise primitives take
``out=`` (and where applicable ``where=``) exactly like the ufuncs they
mirror, so the reference :class:`~repro.backend.numpy_backend.NumpyOps`
can alias the ufuncs directly and stay **byte-identical** to the
pre-seam engine. Alternative backends must hold every primitive to the
repo-wide atol-1e-9 scalar-equivalence bound; the numpy reference is
held to byte identity (preset golden exports unchanged, test-enforced).

Primitive groups
----------------
allocation
    :meth:`empty` / :meth:`zeros` / :meth:`full` with **explicit pinned
    dtypes** — backends may not silently up- or down-cast a buffer.
elementwise
    ``add/subtract/multiply/divide/negative/maximum/minimum/clip`` plus
    masked updates (``copyto`` with ``where=``) and ``where`` selects.
comparison / logic
    ``greater/equal/not_equal/logical_and/logical_not`` writing into
    pinned boolean buffers.
indexing / reduction
    ``flatnonzero/count_nonzero/argmax/bincount`` (the feeder and cost
    book rollups), ``scatter_add`` / ``reduceat_sum`` (dense aggregate
    merges), :meth:`quantile_rows` (scheduler thresholds), and
    :meth:`segment_prefix_sum` (the priority allocator's per-feeder
    exclusive prefix sums — computed per segment, never globally, so
    feeder-closed shards stay bit-identical to the full fleet).
fused composite
    :meth:`resolve_battery` — the charge/discharge/applied-action/SoC
    advance block of the slot kernel, the one region a JIT backend can
    profitably fuse into a single per-hub loop.
"""

from __future__ import annotations

import numpy as np


class ArrayOps:
    """Abstract array-primitive provider for the fused fleet kernel.

    Subclasses set :attr:`name` and provide every primitive below.
    Instances are stateless and shared (the registry caches one per
    backend name), so implementations must be re-entrant.
    """

    #: Registry name of the backend ("numpy", "numba", ...). For a
    #: fallback-resolved backend this is the backend that actually
    #: executes, not the one requested.
    name: str = "abstract"

    #: Whether the battery composite runs through a JIT-compiled kernel.
    jit: bool = False

    # ------------------------------------------------------------------ #
    # Allocation (pinned dtypes — no silent casts)                         #
    # ------------------------------------------------------------------ #

    def empty(self, shape, dtype=np.float64) -> np.ndarray:
        """Uninitialised buffer of an explicit dtype."""
        raise NotImplementedError

    def zeros(self, shape, dtype=np.float64) -> np.ndarray:
        """Zero-filled buffer of an explicit dtype."""
        raise NotImplementedError

    def full(self, shape, fill_value, dtype=np.float64) -> np.ndarray:
        """Constant-filled buffer of an explicit dtype."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Elementwise (ufunc ``out=`` / ``where=`` semantics)                  #
    # ------------------------------------------------------------------ #

    def add(self, a, b, out=None):
        raise NotImplementedError

    def subtract(self, a, b, out=None):
        raise NotImplementedError

    def multiply(self, a, b, out=None):
        raise NotImplementedError

    def divide(self, a, b, out=None):
        raise NotImplementedError

    def negative(self, a, out=None):
        raise NotImplementedError

    def maximum(self, a, b, out=None):
        raise NotImplementedError

    def minimum(self, a, b, out=None):
        raise NotImplementedError

    def clip(self, a, a_min, a_max, out=None):
        raise NotImplementedError

    def where(self, condition, a, b):
        raise NotImplementedError

    def copyto(self, dst, src, where=True) -> None:
        """Masked row update: ``dst[where] = src[where]`` (broadcasting)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Comparison / logic (into boolean buffers)                            #
    # ------------------------------------------------------------------ #

    def greater(self, a, b, out=None):
        raise NotImplementedError

    def equal(self, a, b, out=None):
        raise NotImplementedError

    def not_equal(self, a, b, out=None):
        raise NotImplementedError

    def logical_and(self, a, b, out=None):
        raise NotImplementedError

    def logical_not(self, a, out=None):
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Indexing / reduction                                                 #
    # ------------------------------------------------------------------ #

    def flatnonzero(self, a) -> np.ndarray:
        raise NotImplementedError

    def count_nonzero(self, a) -> int:
        raise NotImplementedError

    def argmax(self, a) -> int:
        raise NotImplementedError

    def bincount(self, x, weights=None, minlength=0) -> np.ndarray:
        """Segment sums keyed by small non-negative ints (feeder rollups)."""
        raise NotImplementedError

    def scatter_add(self, target, indices, values) -> None:
        """Unbuffered ``target[indices] += values`` (``np.add.at``)."""
        raise NotImplementedError

    def reduceat_sum(self, values, starts, axis=0) -> np.ndarray:
        """Contiguous-segment sums along an axis (``np.add.reduceat``)."""
        raise NotImplementedError

    def quantile_rows(self, values, q) -> np.ndarray:
        """Per-row quantile of a 2-D block (scheduler price thresholds)."""
        raise NotImplementedError

    def segment_prefix_sum(self, values, bounds) -> np.ndarray:
        """Exclusive prefix sums within ``[bounds[k], bounds[k+1])`` segments.

        ``bounds`` is a sorted index array with ``bounds[0] == 0`` and
        ``bounds[-1] == len(values)``. Entry *i* of the result is the sum
        of the values strictly before *i* in *i*'s own segment. Sums must
        accumulate per segment (never a global cumsum minus an offset):
        the priority feeder allocator relies on segment-local rounding so
        feeder-closed shards reproduce the unsharded grants bit-for-bit.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Fused composite                                                      #
    # ------------------------------------------------------------------ #

    def resolve_battery(self, kernel, soc, actions, b, applied, p_bp) -> None:
        """The battery block of one fused slot step, for all hubs at once.

        Resolves the charge path (``BatteryPack._charge`` headroom clip),
        the discharge path (both efficiency conventions), the applied
        action (requests degraded to IDLE where the clip zeroed them),
        the battery bus power, and the SoC advance.

        ``kernel`` is the engine's precomputed constant namespace
        (``soc_max_kwh``, ``soc_min_kwh``, ``charge_efficiency``,
        ``stored_requested``, ``drawn_requested``, ``bus_per_drawn``,
        ``dt_h``, ``soc_eps``); ``soc``/``actions`` are read-only
        ``(n_hubs,)`` inputs; ``b`` is the engine's reusable buffer
        namespace. On return ``b.stored``, ``b.drawn``,
        ``b.bus_charge_kwh``, ``b.bus_discharge_kwh`` and ``b.new_soc``
        hold the resolved energies, and ``applied`` / ``p_bp`` (cost-book
        column views) are fully written. Implementations must preserve
        the reference's per-element order of operations within atol 1e-9;
        the numpy reference preserves it bit-for-bit.
        """
        raise NotImplementedError
