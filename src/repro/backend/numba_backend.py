"""Optional numba backend: the battery composite as a JIT per-hub loop.

``numba`` is an *optional* dependency behind a guarded import: when it is
missing, the registry resolves ``"numba"`` to the numpy reference with a
logged warning instead of crashing, so a spec that names the backend
stays runnable everywhere (shard and sweep workers re-resolve in their
own process and fall back the same way).

When numba is present, :class:`NumbaOps` inherits every primitive from
:class:`~repro.backend.numpy_backend.NumpyOps` and overrides only
:meth:`resolve_battery` with an ``@njit`` per-hub scalar loop — the one
region of the slot kernel where fusing ~20 ufunc passes into a single
traversal pays. The loop applies the same operations in the same
per-element order as the reference, so it is held to (and comfortably
inside) the repo-wide atol-1e-9 scalar-equivalence bound.
"""

from __future__ import annotations

import numpy as np

from ..energy.battery import CHARGE, DISCHARGE, IDLE
from .numpy_backend import NumpyOps

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except ImportError:  # pragma: no cover - the default in-tree environment
    numba = None

#: Whether the real JIT backend can be constructed in this process.
HAVE_NUMBA = numba is not None


def _battery_kernel(
    soc_max_kwh,
    soc_min_kwh,
    charge_efficiency,
    stored_requested,
    drawn_requested,
    bus_per_drawn,
    dt_h,
    soc_eps,
    soc,
    actions,
    stored,
    drawn,
    bus_charge_kwh,
    bus_discharge_kwh,
    new_soc,
    applied,
    p_bp,
):  # pragma: no cover - compiled and run only under numba
    """Per-hub battery block; the scalar twin of NumpyOps.resolve_battery."""
    n = soc.shape[0]
    for i in range(n):
        # Charge path (BatteryPack._charge).
        headroom = soc_max_kwh[i] - soc[i]
        if headroom < 0.0:
            headroom = 0.0
        stored_i = stored_requested[i]
        if stored_i > headroom + soc_eps:
            stored_i = headroom
        charging = actions[i] == CHARGE and stored_i > 0.0
        if not charging:
            stored_i = 0.0
        bus_charge = stored_i / charge_efficiency[i]

        # Discharge path (BatteryPack._discharge), both conventions.
        available = soc[i] - soc_min_kwh[i]
        if available < 0.0:
            available = 0.0
        drawn_i = drawn_requested[i]
        if drawn_i > available + soc_eps:
            drawn_i = available
        discharging = actions[i] == DISCHARGE and drawn_i > 0.0
        if not discharging:
            drawn_i = 0.0
        bus_discharge = drawn_i * bus_per_drawn[i]

        stored[i] = stored_i
        drawn[i] = drawn_i
        bus_charge_kwh[i] = bus_charge
        bus_discharge_kwh[i] = bus_discharge
        if charging:
            applied[i] = CHARGE
        elif discharging:
            applied[i] = DISCHARGE
        else:
            applied[i] = IDLE
        p_bp[i] = (bus_charge - bus_discharge) / dt_h
        new_soc[i] = soc[i] + stored_i - drawn_i


class NumbaOps(NumpyOps):
    """JIT battery composite over the numpy primitive set.

    Constructable only where numba is importable; the registry guards
    this and falls back to :class:`NumpyOps` otherwise.
    """

    name = "numba"
    jit = True

    def __init__(self) -> None:  # pragma: no cover - needs numba
        if not HAVE_NUMBA:
            raise RuntimeError(
                "NumbaOps requires the optional numba package; resolve "
                "backends through repro.backend.get_backend, which falls "
                "back to numpy when numba is missing"
            )
        self._kernel = numba.njit(cache=True)(_battery_kernel)

    def resolve_battery(
        self, kernel, soc, actions, b, applied, p_bp
    ) -> None:  # pragma: no cover - needs numba
        self._kernel(
            kernel.soc_max_kwh,
            kernel.soc_min_kwh,
            kernel.charge_efficiency,
            kernel.stored_requested,
            kernel.drawn_requested,
            kernel.bus_per_drawn,
            kernel.dt_h,
            kernel.soc_eps,
            soc,
            np.ascontiguousarray(actions),
            b.stored,
            b.drawn,
            b.bus_charge_kwh,
            b.bus_discharge_kwh,
            b.new_soc,
            applied,
            p_bp,
        )
