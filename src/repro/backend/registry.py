"""Backend resolution: a name (``"numpy"``, ``"numba"``) to an ``ArrayOps``.

One instance per backend is constructed lazily and cached for the
process — backends are stateless, and sharing keeps the engines cheap to
build. Resolution is where the optional-dependency policy lives: asking
for ``"numba"`` on a machine without numba logs a warning and returns the
numpy reference instead of crashing, so specs that pin the backend stay
portable (worker processes re-resolve and fall back identically, keeping
parent and shard arithmetic byte-identical).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..telemetry import log
from .base import ArrayOps
from .numba_backend import HAVE_NUMBA, NumbaOps
from .numpy_backend import NumpyOps

#: Every backend name the registry (and ``RunSpec.backend``) accepts.
BACKEND_NAMES = ("numpy", "numba")

_INSTANCES: dict[str, ArrayOps] = {}


def available_backends() -> list[str]:
    """Backends that resolve to a *real* implementation here (no fallback)."""
    names = ["numpy"]
    if HAVE_NUMBA:  # pragma: no cover - needs the optional numba package
        names.append("numba")
    return names


def get_backend(backend: str | ArrayOps = "numpy") -> ArrayOps:
    """Resolve a backend name (or pass an ``ArrayOps`` instance through).

    Unknown names raise :class:`~repro.errors.ConfigError`; ``"numba"``
    without the optional numba package falls back to the numpy reference
    with a logged warning (every resolution warns, so shard/sweep worker
    logs show the fallback too).
    """
    if isinstance(backend, ArrayOps):
        return backend
    if backend not in BACKEND_NAMES:
        raise ConfigError(
            f"unknown array backend {backend!r}; "
            f"available: {', '.join(BACKEND_NAMES)}"
        )
    if backend == "numba" and not HAVE_NUMBA:
        log.warning(
            "numba backend unavailable (the optional numba package is not "
            "installed); falling back to numpy",
        )
        backend = "numpy"
    ops = _INSTANCES.get(backend)
    if ops is None:
        if backend == "numpy":
            ops = NumpyOps()
        else:  # pragma: no cover - needs the optional numba package
            ops = NumbaOps()
        _INSTANCES[backend] = ops
    return ops
