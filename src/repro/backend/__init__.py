"""``repro.backend`` — the pluggable array-backend seam under the engine.

The fused fleet kernel, feeder allocator, cost book, and vectorized
schedulers dispatch every hot-path array operation through an
:class:`~repro.backend.base.ArrayOps` instance instead of calling numpy
directly. :func:`get_backend` resolves one by name:

``"numpy"``
    The reference implementation — direct ufunc aliases, byte-identical
    to the pre-seam engine (preset golden exports unchanged).
``"numba"``
    Optional JIT backend that fuses the battery block of the slot kernel
    into a compiled per-hub loop. Behind a guarded import: without the
    numba package it falls back to numpy with a logged warning.

Selection threads through the whole spine: ``RunSpec.backend`` (JSON
round-trippable, ``--set run.backend=...`` overridable), the spec
compiler, ``api.run``/sweeps/pricing/RL, the ``ect-hub fleet --backend``
CLI flag, and shard/sweep workers (children re-resolve the spec's
backend in their own process). The telemetry run fingerprint records
which backend actually executed.
"""

from .base import ArrayOps
from .numpy_backend import NumpyOps
from .registry import BACKEND_NAMES, available_backends, get_backend

__all__ = [
    "ArrayOps",
    "BACKEND_NAMES",
    "NumpyOps",
    "available_backends",
    "get_backend",
]
