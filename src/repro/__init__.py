"""ECT-Hub: a base-station-centric energy-communication-transportation hub.

Reproduction of *"Towards Integrated Energy-Communication-Transportation
Hub: A Base-Station-Centric Design in 5G and Beyond"* (ICDCS 2024).

Subpackages
-----------
``repro.nn``
    From-scratch numpy autograd / neural-network substrate.
``repro.synth``
    Synthetic replacements for the paper's datasets (weather, RTP,
    cellular traffic, EV charging sessions, road/BS geography).
``repro.energy``
    Physical models: batteries + degradation, PV, wind turbines, base
    stations, charging stations, grid connection.
``repro.hub``
    The ECT-Hub composition, power balance, cost model, and simulator.
``repro.fleet``
    Vectorized fleet engine: batch-step N hubs per slot (struct-of-arrays
    state), numerically equivalent to N independent hub simulations.
``repro.causal``
    ECT-Price (CF-MTL causal pricing) and the OR/IPS/DR uplift baselines.
``repro.rl``
    ECT-DRL (PPO battery scheduling), baseline schedulers, DP oracle.
``repro.spec``
    Declarative scenario layer: serializable ``ScenarioSpec`` trees,
    named presets, sweep grids, and the compiler down to the engines.
``repro.experiments``
    One runner per paper table/figure plus ablations.

Top-level modules: ``repro.api`` is the scenario facade
(``api.run("congested-city")``); ``repro.config`` the dataclass
serialization plumbing every spec builds on.
"""

__version__ = "0.1.0"

from . import config, errors, rng, timeutils, units

__all__ = ["config", "errors", "rng", "timeutils", "units", "__version__"]
