"""Process-parallel execution: sweep job chunks and intra-scenario shards.

``api.run_sweep`` grids are embarrassingly parallel — every job is an
independent :class:`~repro.spec.scenario.ScenarioSpec`, and PR 3 made
those specs plain serializable data. This module ships jobs to a
:class:`concurrent.futures.ProcessPoolExecutor` worker as spec JSON
text; the worker compiles and runs each one exactly like the serial path
(``repro.api.run``) and pickles the :class:`~repro.experiments.base.
ExperimentResult` back. Because the compiler is deterministic and every
worker executes the same NumPy arithmetic the serial loop would, a
parallel sweep is **byte-identical** to its serial twin — results are
re-ordered by job index before they are returned, so even the ``--out``
JSON matches byte for byte (test-enforced).

Two executors live here:

* :func:`run_jobs_parallel` — the sweep executor. Jobs are submitted in
  **chunks** (many jobs per worker task) so a large grid pays one
  submit/result round-trip per chunk instead of per job, and each worker
  process keeps a one-slot :func:`assembly cache <_cached_assembly>`:
  consecutive jobs in a chunk that share a fleet/grid/blackout
  fingerprint (the common sweep shape — vary scheduler or pricing knobs
  over one fleet) skip re-synthesising hub traces entirely.
* :func:`run_shards_parallel` — the city-scale shard runner. One
  scenario's hubs are partitioned by :func:`~repro.fleet.sharding.
  plan_shards`; each worker compiles and steps its shard
  (:func:`~repro.fleet.sharding.run_shard`) and the parent merges the
  books. Shard results are ordered by shard index.

Guarantees:

* deterministic result ordering by job index, whatever finishes first;
* ``jobs=0`` resolves to this process's CPU *affinity* set where the
  platform reports one (``os.sched_getaffinity``), falling back to
  ``os.cpu_count()`` — so container/cgroup-limited runs stop
  oversubscribing their quota;
* a failing job raises :class:`~repro.errors.ParallelError` naming the
  job's overrides (so a 100-job grid tells you *which* point died), with
  the worker's original exception chained as ``__cause__`` and the
  worker's formatted traceback carried as ``.job_traceback`` (captured
  worker-side — the remote stack does not survive pickling otherwise);
* the pool never outlives the call (context-managed, failures included);
* with ``with_telemetry=True`` each worker runs its job under a
  job-local :class:`~repro.telemetry.session.Telemetry` session and
  ships the RunTelemetry record back on ``result.telemetry``, so the
  caller can aggregate per-worker phase timings and counters
  (:meth:`Telemetry.absorb`) exactly as the serial path does.

When to parallelize: each worker pays a process fork plus a result
pickle, so tiny grids (a handful of sub-second jobs) are usually faster
serial. The sweet spot is many jobs x non-trivial horizons — see the
``parallel-sweep`` benchmark for measured crossover numbers.
"""

from __future__ import annotations

import math
import os
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed

from .errors import ConfigError, ParallelError
from .experiments.base import ExperimentResult
from .spec.sweep import SweepJob
from .telemetry import log


def _remote_traceback(error: BaseException) -> str:
    """The failing worker's formatted traceback.

    ``concurrent.futures`` re-raises worker exceptions in the parent with
    the remote stack attached as a ``_RemoteTraceback`` cause (the real
    traceback object cannot be pickled). Fall back to formatting the
    exception locally if that private chain ever changes shape.
    """
    cause = getattr(error, "__cause__", None)
    if type(cause).__name__ == "_RemoteTraceback":
        return str(cause).strip().strip('"').strip()
    return "".join(
        traceback.format_exception(type(error), error, error.__traceback__)
    ).strip()


def _available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.sched_getaffinity(0)`` honours taskset/cgroup cpusets (Linux);
    platforms without it fall back to the raw core count.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` request: ``None``→1 (serial), ``0``→all cores.

    "All cores" means the affinity set (:func:`_available_cpus`), not the
    machine's nominal core count.
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0 (0 = all cores), got {jobs}")
    if jobs == 0:
        return _available_cpus()
    return jobs


def resolve_chunk_size(
    chunk_size: int | None, n_jobs: int, workers: int
) -> int:
    """Jobs per worker task: explicit, or ~4 chunks per worker.

    The auto split keeps the pool load-balanced (stragglers only delay
    one small chunk) while amortising submit/result overhead and giving
    the per-worker assembly cache consecutive same-fleet jobs to hit on.
    """
    if chunk_size is not None:
        chunk_size = int(chunk_size)
        if chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        return chunk_size
    return max(1, math.ceil(n_jobs / (workers * 4)))


#: One-slot per-process assembly cache: (fingerprint, FleetAssembly).
#: Lives at module scope so it survives across tasks on one pool worker.
_WORKER_ASSEMBLY: tuple[str, object] | None = None


def _cached_assembly(spec):
    """This worker's :class:`FleetAssembly` for ``spec``, reusing the last
    one when the spec's fleet/grid/blackout fingerprint matches.

    A hit skips trace synthesis *and* keeps the realized-strata cache
    warm (``build`` rebinds the assembly to the new spec), which is what
    makes scheduler/pricing sweeps over one fleet cheap per extra job.
    """
    global _WORKER_ASSEMBLY
    from .spec.compiler import _assemble_fleet, assembly_fingerprint

    fingerprint = assembly_fingerprint(spec)
    if _WORKER_ASSEMBLY is None or _WORKER_ASSEMBLY[0] != fingerprint:
        _WORKER_ASSEMBLY = (fingerprint, _assemble_fleet(spec))
    return _WORKER_ASSEMBLY[1]


def _run_payload(payload: str, with_telemetry: bool = False) -> ExperimentResult:
    """Worker entry point: spec JSON in, completed result out.

    ``with_telemetry`` runs the job under a worker-local telemetry
    session; the record rides back on ``result.telemetry`` (metadata is
    skipped — the parent stamps one fingerprint for the whole sweep).

    Because the job is rebuilt from the spec JSON, the worker's engine
    re-resolves ``run.backend`` in its own process — sweep children
    inherit the parent's array backend (and fall back identically where
    the optional numba package is missing).
    """
    # Local imports keep the worker bootstrap light under spawn-style
    # start methods (under fork they are already-cached module lookups).
    from . import api
    from .spec.scenario import ScenarioSpec
    from .telemetry import Telemetry

    spec = ScenarioSpec.from_json(payload)
    telemetry = Telemetry(include_meta=False) if with_telemetry else None
    return api.run(spec, telemetry=telemetry, assembly=_cached_assembly(spec))


def _run_payload_chunk(
    payloads: list[str], with_telemetry: bool = False
) -> tuple[list[ExperimentResult], tuple[int, BaseException, str] | None]:
    """Worker entry point for a chunk of jobs.

    Returns ``(results, failure)`` where ``failure`` is ``None`` or
    ``(offset_in_chunk, original_error, formatted_traceback)`` for the
    first job that raised — jobs after it are not run. The error rides
    back as a *value* (not a raise) so the parent can chain the genuine
    exception instance as ``ParallelError.__cause__``; errors that don't
    survive pickling are replaced by a ``RuntimeError`` carrying their
    repr.
    """
    results: list[ExperimentResult] = []
    for offset, payload in enumerate(payloads):
        try:
            results.append(_run_payload(payload, with_telemetry))
        except Exception as error:
            trace = "".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            ).strip()
            try:
                pickle.dumps(error)
            except Exception:
                error = RuntimeError(repr(error))
            return results, (offset, error, trace)
    return results, None


def run_jobs_parallel(
    expanded: list[SweepJob],
    n_workers: int,
    *,
    with_telemetry: bool = False,
    chunk_size: int | None = None,
) -> list[ExperimentResult]:
    """Run pre-expanded sweep jobs over a worker pool, ordered by index.

    The caller (``api.run_sweep``) expands the grid once and tags the
    returned results, so serial and parallel sweeps share one code path
    for everything except the executor. Jobs are submitted as contiguous
    chunks (:func:`resolve_chunk_size`); within a chunk they run in grid
    order, which is also what lets the worker-side assembly cache hit.
    """
    if not expanded:
        return []
    results: list[ExperimentResult | None] = [None] * len(expanded)
    workers = min(n_workers, len(expanded))
    size = resolve_chunk_size(chunk_size, len(expanded), workers)
    chunks = [expanded[i : i + size] for i in range(0, len(expanded), size)]
    log.debug(
        "starting worker pool",
        workers=workers,
        jobs=len(expanded),
        chunks=len(chunks),
    )
    with ProcessPoolExecutor(max_workers=workers) as pool:
        future_chunks = {
            pool.submit(
                _run_payload_chunk,
                [job.spec.to_json() for job in chunk],
                with_telemetry,
            ): chunk
            for chunk in chunks
        }
        # Collect in completion order so the *first* failure is observed
        # as soon as it happens; indices restore job order below.
        for future in as_completed(future_chunks):
            chunk = future_chunks[future]
            chunk_results, failure = future.result()
            for job, result in zip(chunk, chunk_results):
                results[job.index] = result
            if failure is not None:
                # Fail fast: drop the not-yet-started remainder of the
                # grid instead of burning CPU after the outcome is known.
                pool.shutdown(wait=False, cancel_futures=True)
                offset, error, trace = failure
                job = chunk[offset]
                label = job.label() or "(base spec)"
                raise ParallelError(
                    f"sweep job {job.index} [{label}] failed in a worker: "
                    f"{error}",
                    job_traceback=trace,
                ) from error
    return results  # type: ignore[return-value]


def _run_shard_task(task):
    """Worker entry point for one fleet shard (module-level: picklable)."""
    from .fleet.sharding import run_shard

    return run_shard(task)


def run_shards_parallel(tasks: list, n_workers: int) -> list:
    """Run :class:`~repro.fleet.sharding.ShardTask`s, ordered by shard index.

    A single task (or ``n_workers <= 1``) runs in-process — no pool, no
    pickling — so one-shard plans cost nothing over the unsharded path.
    Failures raise :class:`ParallelError` naming the shard and its size,
    with the worker traceback on ``.job_traceback``.
    """
    if not tasks:
        return []
    if len(tasks) == 1 or n_workers <= 1:
        return [_run_shard_task(task) for task in tasks]
    results = [None] * len(tasks)
    workers = min(n_workers, len(tasks))
    log.debug("starting shard pool", workers=workers, shards=len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        future_tasks = {
            pool.submit(_run_shard_task, task): task for task in tasks
        }
        for future in as_completed(future_tasks):
            task = future_tasks[future]
            try:
                result = future.result()
            except Exception as error:
                pool.shutdown(wait=False, cancel_futures=True)
                raise ParallelError(
                    f"shard {task.shard_index} ({len(task.hub_indices)} hubs) "
                    f"failed in a worker: {error}",
                    job_traceback=_remote_traceback(error),
                ) from error
            results[result.shard_index] = result
    return results
