"""Process-parallel sweep execution: one worker pool, spec-JSON payloads.

``api.run_sweep`` grids are embarrassingly parallel — every job is an
independent :class:`~repro.spec.scenario.ScenarioSpec`, and PR 3 made
those specs plain serializable data. This module ships each job to a
:class:`concurrent.futures.ProcessPoolExecutor` worker as its spec's JSON
text; the worker compiles and runs it exactly like the serial path
(``repro.api.run``) and pickles the :class:`~repro.experiments.base.
ExperimentResult` back. Because the compiler is deterministic and every
worker executes the same NumPy arithmetic the serial loop would, a
parallel sweep is **byte-identical** to its serial twin — results are
re-ordered by job index before they are returned, so even the ``--out``
JSON matches byte for byte (test-enforced).

Guarantees:

* deterministic result ordering by job index, whatever finishes first;
* ``jobs=0`` resolves to ``os.cpu_count()``;
* a failing job raises :class:`~repro.errors.ParallelError` naming the
  job's overrides (so a 100-job grid tells you *which* point died), with
  the worker's original exception chained as ``__cause__`` and the
  worker's formatted traceback carried as ``.job_traceback`` (captured
  worker-side — the remote stack does not survive pickling otherwise);
* the pool never outlives the call (context-managed, failures included);
* with ``with_telemetry=True`` each worker runs its job under a
  job-local :class:`~repro.telemetry.session.Telemetry` session and
  ships the RunTelemetry record back on ``result.telemetry``, so the
  caller can aggregate per-worker phase timings and counters
  (:meth:`Telemetry.absorb`) exactly as the serial path does.

When to parallelize: each worker pays a process fork plus a result
pickle, so tiny grids (a handful of sub-second jobs) are usually faster
serial. The sweet spot is many jobs x non-trivial horizons — see the
``parallel-sweep`` benchmark for measured crossover numbers.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed

from .errors import ConfigError, ParallelError
from .experiments.base import ExperimentResult
from .spec.sweep import SweepJob
from .telemetry import log


def _remote_traceback(error: BaseException) -> str:
    """The failing worker's formatted traceback.

    ``concurrent.futures`` re-raises worker exceptions in the parent with
    the remote stack attached as a ``_RemoteTraceback`` cause (the real
    traceback object cannot be pickled). Fall back to formatting the
    exception locally if that private chain ever changes shape.
    """
    cause = getattr(error, "__cause__", None)
    if type(cause).__name__ == "_RemoteTraceback":
        return str(cause).strip().strip('"').strip()
    return "".join(
        traceback.format_exception(type(error), error, error.__traceback__)
    ).strip()


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` request: ``None``→1 (serial), ``0``→all cores."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0 (0 = all cores), got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _run_payload(payload: str, with_telemetry: bool = False) -> ExperimentResult:
    """Worker entry point: spec JSON in, completed result out.

    ``with_telemetry`` runs the job under a worker-local telemetry
    session; the record rides back on ``result.telemetry`` (metadata is
    skipped — the parent stamps one fingerprint for the whole sweep).
    """
    # Local imports keep the worker bootstrap light under spawn-style
    # start methods (under fork they are already-cached module lookups).
    from . import api
    from .spec.scenario import ScenarioSpec
    from .telemetry import Telemetry

    telemetry = Telemetry(include_meta=False) if with_telemetry else None
    return api.run(ScenarioSpec.from_json(payload), telemetry=telemetry)


def run_jobs_parallel(
    expanded: list[SweepJob], n_workers: int, *, with_telemetry: bool = False
) -> list[ExperimentResult]:
    """Run pre-expanded sweep jobs over a worker pool, ordered by index.

    The caller (``api.run_sweep``) expands the grid once and tags the
    returned results, so serial and parallel sweeps share one code path
    for everything except the executor.
    """
    if not expanded:
        return []
    results: list[ExperimentResult | None] = [None] * len(expanded)
    workers = min(n_workers, len(expanded))
    log.debug("starting worker pool", workers=workers, jobs=len(expanded))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        future_jobs = {
            pool.submit(_run_payload, job.spec.to_json(), with_telemetry): job
            for job in expanded
        }
        # Collect in completion order so the *first* failure is observed
        # as soon as it happens; indices restore job order below.
        for future in as_completed(future_jobs):
            job = future_jobs[future]
            try:
                results[job.index] = future.result()
            except Exception as error:
                # Fail fast: drop the not-yet-started remainder of the
                # grid instead of burning CPU after the outcome is known.
                pool.shutdown(wait=False, cancel_futures=True)
                label = job.label() or "(base spec)"
                raise ParallelError(
                    f"sweep job {job.index} [{label}] failed in a worker: "
                    f"{error}",
                    job_traceback=_remote_traceback(error),
                ) from error
    return results  # type: ignore[return-value]
