"""The ECT-Hub composition — the paper's Fig. 6 system.

An :class:`EctHub` bundles one battery point, a cluster of co-located base
stations, a charging station, optional PV / WT plants, and the grid
interconnection. Its :meth:`power_balance` implements Eq. 7:

``P_grid(t) = max{0, P_BS + P_CS + P_BP − P_WT − P_PV}``

with the curtailed surplus reported separately so energy accounting closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError, HubError
from ..energy.base_station import BaseStationCluster, BaseStationConfig
from ..energy.battery import BatteryConfig, BatteryPack
from ..energy.charging_station import ChargingStation, ChargingStationConfig
from ..energy.grid import GridConfig, GridConnection
from ..energy.pv import PvArray, PvConfig
from ..energy.wind_turbine import WindTurbine, WindTurbineConfig


@dataclass(frozen=True)
class HubConfig:
    """Full equipment configuration of one ECT-Hub.

    ``pv`` / ``wind_turbine`` may be None for hubs without that plant
    (urban hubs typically have rooftop PV only; Fig. 6 shows rural hubs
    with both). ``c_bp_per_slot`` is the paper's battery operating cost
    (Eq. 8), set to 0.01 in §V-C. ``dt_h`` is the slot length.
    """

    battery: BatteryConfig = field(default_factory=BatteryConfig)
    base_station: BaseStationConfig = field(default_factory=BaseStationConfig)
    n_base_stations: int = 2
    charging_station: ChargingStationConfig = field(default_factory=ChargingStationConfig)
    pv: PvConfig | None = field(default_factory=PvConfig)
    wind_turbine: WindTurbineConfig | None = None
    grid: GridConfig = field(default_factory=GridConfig)
    c_bp_per_slot: float = 0.01
    dt_h: float = 1.0

    def __post_init__(self) -> None:
        if self.n_base_stations <= 0:
            raise ConfigError(f"n_base_stations must be positive, got {self.n_base_stations}")
        if self.c_bp_per_slot < 0:
            raise ConfigError(f"c_bp_per_slot must be non-negative, got {self.c_bp_per_slot}")
        if self.dt_h <= 0:
            raise ConfigError(f"dt_h must be positive, got {self.dt_h}")


@dataclass(frozen=True)
class PowerBalance:
    """Resolved Eq. 7 for one slot (all values in kW)."""

    grid_import_kw: float
    surplus_kw: float

    def __post_init__(self) -> None:
        if self.grid_import_kw < 0 or self.surplus_kw < 0:
            raise HubError("grid import and surplus must be non-negative")
        if self.grid_import_kw > 0 and self.surplus_kw > 0:
            raise HubError("a slot cannot both import and curtail")


class EctHub:
    """One energy-communication-transportation hub.

    >>> hub = EctHub(HubConfig())
    >>> hub.battery.soc_fraction
    0.5
    """

    def __init__(
        self,
        config: HubConfig | None = None,
        *,
        initial_soc_fraction: float = 0.5,
    ) -> None:
        self.config = config or HubConfig()
        self.battery = BatteryPack(
            self.config.battery, initial_soc_fraction=initial_soc_fraction
        )
        self.base_stations = BaseStationCluster(
            self.config.n_base_stations, self.config.base_station
        )
        self.charging_station = ChargingStation(self.config.charging_station)
        self.pv = PvArray(self.config.pv) if self.config.pv is not None else None
        self.wind_turbine = (
            WindTurbine(self.config.wind_turbine)
            if self.config.wind_turbine is not None
            else None
        )
        self.grid = GridConnection(self.config.grid)

    # ------------------------------------------------------------------ #
    # Renewable generation                                                 #
    # ------------------------------------------------------------------ #

    def renewable_power_kw(
        self, irradiance_w_m2: float, wind_speed_m_s: float
    ) -> tuple[float, float]:
        """(``P_PV``, ``P_WT``) for the given weather observation."""
        p_pv = float(self.pv.power_kw(irradiance_w_m2)) if self.pv is not None else 0.0
        p_wt = (
            float(self.wind_turbine.power_kw(wind_speed_m_s))
            if self.wind_turbine is not None
            else 0.0
        )
        return p_pv, p_wt

    # ------------------------------------------------------------------ #
    # Power balance (Eq. 7)                                                #
    # ------------------------------------------------------------------ #

    def power_balance(
        self,
        *,
        p_bs_kw: float,
        p_cs_kw: float,
        p_bp_kw: float,
        p_pv_kw: float,
        p_wt_kw: float,
    ) -> PowerBalance:
        """Resolve the residual bus power into grid import + curtailment.

        ``p_bp_kw`` is signed (positive while charging, negative while
        discharging), exactly the paper's ``P_BP``.
        """
        if p_bs_kw < 0 or p_cs_kw < 0 or p_pv_kw < 0 or p_wt_kw < 0:
            raise HubError("loads and generation must be non-negative")
        residual = p_bs_kw + p_cs_kw + p_bp_kw - p_pv_kw - p_wt_kw
        if residual >= 0:
            return PowerBalance(
                grid_import_kw=self.grid.draw_power(residual), surplus_kw=0.0
            )
        return PowerBalance(grid_import_kw=0.0, surplus_kw=-residual)
