"""Slot-stepping simulation engine for one ECT-Hub.

:class:`HubSimulation` advances a hub through aligned exogenous traces
(:class:`HubInputs`): per slot it applies a battery action, resolves the
Eq. 7 power balance, books Eqs. 8–11 into a :class:`SlotLedger`, and
handles blackout slots (grid import forced to zero, charging suspended,
the battery's emergency reserve carries the base stations).

This engine is shared by the rule-based schedulers, the DP oracle, and the
RL environment, so every method is scored by the exact same accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError, HubError
from ..energy.battery import IDLE
from .costs import CostBook, SlotLedger, compute_slot_ledger
from .hub import EctHub


def validate_exogenous_traces(
    *,
    load_rate: np.ndarray,
    rtp_kwh: np.ndarray,
    pv_power_kw: np.ndarray,
    wt_power_kw: np.ndarray,
    occupied: np.ndarray,
    discount: np.ndarray,
    context: str = "hub input",
) -> None:
    """Range- and finiteness-check exogenous traces of any shape.

    Shared by :class:`HubInputs` (1-D, one hub) and
    :class:`repro.fleet.FleetInputs` (2-D, ``(n_hubs, horizon)``) so both
    engines reject the same malformed data. NaN traces would otherwise slip
    through pure range checks because every NaN comparison is False.
    """
    traces = {
        "load_rate": load_rate,
        "rtp_kwh": rtp_kwh,
        "pv_power_kw": pv_power_kw,
        "wt_power_kw": wt_power_kw,
        "occupied": occupied,
        "discount": discount,
    }
    for name, trace in traces.items():
        arr = np.asarray(trace)
        if arr.size and not np.isfinite(arr).all():
            raise DataError(f"{context} column {name} contains NaN or inf")
    if not np.asarray(load_rate).size:
        return
    if load_rate.min() < 0 or load_rate.max() > 1:
        raise DataError("load_rate must lie in [0, 1]")
    if rtp_kwh.min() < 0:
        raise DataError("rtp_kwh must be non-negative")
    if pv_power_kw.min() < 0 or wt_power_kw.min() < 0:
        raise DataError("renewable power must be non-negative")
    if not np.isin(np.unique(occupied), (0, 1)).all():
        raise DataError("occupied must be binary")
    if discount.min() < 0 or discount.max() >= 1:
        raise DataError("discount must lie in [0, 1)")


@dataclass(frozen=True)
class HubInputs:
    """Exogenous per-slot traces driving a simulation.

    All arrays share one length (the horizon):

    * ``load_rate`` — BS load ``α_t`` in [0, 1] (from traffic).
    * ``rtp_kwh`` — grid real-time price, $/kWh.
    * ``pv_power_kw`` / ``wt_power_kw`` — renewable generation.
    * ``occupied`` — charging-station occupancy ``S_CS`` (0/1), already
      resolved from strata + discounts by the pricing layer.
    * ``discount`` — discount fraction applied to the selling price.
    * ``outage`` — optional blackout mask.
    """

    load_rate: np.ndarray
    rtp_kwh: np.ndarray
    pv_power_kw: np.ndarray
    wt_power_kw: np.ndarray
    occupied: np.ndarray
    discount: np.ndarray
    outage: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = len(self.load_rate)
        for name in ("rtp_kwh", "pv_power_kw", "wt_power_kw", "occupied", "discount"):
            if len(getattr(self, name)) != n:
                raise DataError(f"hub input column {name} has inconsistent length")
        if self.outage is not None and len(self.outage) != n:
            raise DataError("outage mask has inconsistent length")
        validate_exogenous_traces(
            load_rate=self.load_rate,
            rtp_kwh=self.rtp_kwh,
            pv_power_kw=self.pv_power_kw,
            wt_power_kw=self.wt_power_kw,
            occupied=self.occupied,
            discount=self.discount,
        )

    def __len__(self) -> int:
        return len(self.load_rate)

    def slice(self, start: int, stop: int) -> "HubInputs":
        """Sub-inputs covering slots [start, stop)."""
        if not 0 <= start <= stop <= len(self):
            raise DataError(
                f"invalid slice [{start}, {stop}) for inputs of length {len(self)}"
            )
        return HubInputs(
            load_rate=self.load_rate[start:stop],
            rtp_kwh=self.rtp_kwh[start:stop],
            pv_power_kw=self.pv_power_kw[start:stop],
            wt_power_kw=self.wt_power_kw[start:stop],
            occupied=self.occupied[start:stop],
            discount=self.discount[start:stop],
            outage=None if self.outage is None else self.outage[start:stop],
        )


class HubSimulation:
    """Advance one hub through :class:`HubInputs`, slot by slot."""

    def __init__(
        self,
        hub: EctHub,
        inputs: HubInputs,
        *,
        initial_soc_fraction: float = 0.5,
    ) -> None:
        self.hub = hub
        self.inputs = inputs
        self._initial_soc = initial_soc_fraction
        self.book = CostBook()
        self._t = 0
        self.hub.battery.reset(initial_soc_fraction)

    # ------------------------------------------------------------------ #
    # State                                                                #
    # ------------------------------------------------------------------ #

    @property
    def t(self) -> int:
        """Next slot index to simulate."""
        return self._t

    @property
    def horizon(self) -> int:
        """Total number of slots."""
        return len(self.inputs)

    @property
    def done(self) -> bool:
        """Whether the horizon has been exhausted."""
        return self._t >= self.horizon

    def reset(self, *, soc_fraction: float | None = None) -> None:
        """Rewind to slot 0 and reset the battery and the cost book."""
        self._t = 0
        self.book = CostBook()
        self.hub.battery.reset(
            self._initial_soc if soc_fraction is None else soc_fraction
        )

    # ------------------------------------------------------------------ #
    # Stepping                                                             #
    # ------------------------------------------------------------------ #

    def step(self, action: int) -> SlotLedger:
        """Apply one battery action to the current slot and book the result."""
        if self.done:
            raise HubError(f"simulation horizon of {self.horizon} slots exhausted")
        t = self._t
        hub = self.hub
        cfg = hub.config
        dt = cfg.dt_h

        is_blackout = bool(self.inputs.outage is not None and self.inputs.outage[t])
        p_bs = float(hub.base_stations.power_kw(float(self.inputs.load_rate[t])))
        rtp = float(self.inputs.rtp_kwh[t])
        discount = float(self.inputs.discount[t])
        srtp = hub.charging_station.selling_price_kwh(discount)

        if is_blackout:
            ledger = self._blackout_slot(t, p_bs, rtp, srtp, dt)
        else:
            ledger = self._normal_slot(t, action, p_bs, rtp, srtp, dt)
        self.book.add(ledger)
        self._t += 1
        return ledger

    def _normal_slot(
        self, t: int, action: int, p_bs: float, rtp: float, srtp: float, dt: float
    ) -> SlotLedger:
        hub = self.hub
        cfg = hub.config
        p_pv = float(self.inputs.pv_power_kw[t])
        p_wt = float(self.inputs.wt_power_kw[t])
        occupied = int(self.inputs.occupied[t])
        p_cs = float(hub.charging_station.power_kw(occupied))

        result = hub.battery.step(action, dt_h=dt)
        balance = hub.power_balance(
            p_bs_kw=p_bs,
            p_cs_kw=p_cs,
            p_bp_kw=result.bus_power_kw,
            p_pv_kw=p_pv,
            p_wt_kw=p_wt,
        )
        return compute_slot_ledger(
            slot=t,
            action=result.action,
            p_bs_kw=p_bs,
            p_cs_kw=p_cs,
            p_bp_kw=result.bus_power_kw,
            p_pv_kw=p_pv,
            p_wt_kw=p_wt,
            p_grid_kw=balance.grid_import_kw,
            surplus_kw=balance.surplus_kw,
            rtp_kwh=rtp,
            srtp_kwh=srtp,
            soc_kwh=hub.battery.soc_kwh,
            c_bp_per_slot=cfg.c_bp_per_slot,
            dt_h=dt,
        )

    def _blackout_slot(
        self, t: int, p_bs: float, rtp: float, srtp: float, dt: float
    ) -> SlotLedger:
        """Grid down: serve the BS from renewables then the emergency reserve.

        Charging is suspended (no revenue) and the scheduled action is
        overridden — keeping communication alive is the hub's hard priority
        (§II-C). Renewables cover what they can; the battery may dip below
        ``SoC_min`` per the Eq. 6 reserve design.
        """
        hub = self.hub
        cfg = hub.config
        p_pv = float(self.inputs.pv_power_kw[t])
        p_wt = float(self.inputs.wt_power_kw[t])

        renewable_kw = p_pv + p_wt
        deficit_kwh = max(p_bs - renewable_kw, 0.0) * dt
        served_kwh = hub.battery.emergency_supply(deficit_kwh)
        unserved_kwh = deficit_kwh - served_kwh
        surplus_kw = max(renewable_kw - p_bs, 0.0)
        battery_kw = -served_kwh / dt if served_kwh > 0 else 0.0

        return compute_slot_ledger(
            slot=t,
            action=IDLE,
            p_bs_kw=p_bs,
            p_cs_kw=0.0,
            p_bp_kw=battery_kw,
            p_pv_kw=p_pv,
            p_wt_kw=p_wt,
            p_grid_kw=0.0,
            surplus_kw=surplus_kw,
            rtp_kwh=rtp,
            srtp_kwh=srtp,
            soc_kwh=hub.battery.soc_kwh,
            c_bp_per_slot=cfg.c_bp_per_slot,
            dt_h=dt,
            blackout=True,
            unserved_kwh=unserved_kwh,
        )

    def run(self, policy) -> CostBook:
        """Run the remaining horizon under ``policy(simulation) -> action``.

        The policy receives the simulation itself (so it can inspect
        ``t``, the inputs, and the battery) and returns a battery action
        per slot. Returns the completed :class:`CostBook`.
        """
        while not self.done:
            self.step(int(policy(self)))
        return self.book
