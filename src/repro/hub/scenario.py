"""Scenario assembly: from fleet descriptions to runnable simulations.

A :class:`HubScenario` wires one :class:`~repro.synth.catalog.HubSite` to
its generated exogenous traces (weather → PV/WT power, traffic → load rate,
RTP) plus an Eq. 6-sized battery. Charging-station occupancy is *not* fixed
here — it depends on the pricing method's discount decisions and the latent
strata — so scenarios expose :meth:`inputs_with_occupancy` to close the
loop, and :func:`resolve_occupancy` implements the strata semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import replace
from ..errors import ConfigError, DataError
from ..energy.base_station import BaseStationCluster, BaseStationConfig
from ..energy.battery import BatteryConfig
from ..energy.charging_station import ChargingStationConfig
from ..energy.pv import PvArray, PvConfig
from ..energy.wind_turbine import WindTurbine, WindTurbineConfig
from ..rng import RngFactory
from ..synth.catalog import HubSite, default_fleet
from ..synth.charging import ChargingBehaviorModel, ChargingConfig, Stratum
from ..synth.rtp import RtpConfig, RtpGenerator
from ..synth.traffic import TrafficConfig, TrafficGenerator
from ..synth.weather import WeatherConfig, WeatherGenerator
from .constraints import sized_battery_config
from .hub import EctHub, HubConfig
from .simulation import HubInputs, HubSimulation


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs shared by every hub in a generated fleet scenario."""

    n_hours: int = 24 * 30
    recovery_time_h: int = 4
    battery: BatteryConfig = field(default_factory=BatteryConfig)
    base_station: BaseStationConfig = field(default_factory=BaseStationConfig)
    charging_station: ChargingStationConfig = field(default_factory=ChargingStationConfig)
    weather: WeatherConfig = field(default_factory=WeatherConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    rtp: RtpConfig = field(default_factory=RtpConfig)
    charging: ChargingConfig = field(default_factory=ChargingConfig)
    c_bp_per_slot: float = 0.01

    def __post_init__(self) -> None:
        if self.n_hours <= 0:
            raise ConfigError(f"n_hours must be positive, got {self.n_hours}")
        if self.recovery_time_h < 0:
            raise ConfigError("recovery_time_h must be non-negative")


@dataclass
class HubScenario:
    """One hub plus all its exogenous traces, ready to simulate."""

    site: HubSite
    hub_config: HubConfig
    load_rate: np.ndarray
    rtp_kwh: np.ndarray
    pv_power_kw: np.ndarray
    wt_power_kw: np.ndarray
    irradiance_w_m2: np.ndarray
    wind_speed_m_s: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.load_rate)
        for name in (
            "rtp_kwh",
            "pv_power_kw",
            "wt_power_kw",
            "irradiance_w_m2",
            "wind_speed_m_s",
        ):
            if len(getattr(self, name)) != n:
                raise DataError(f"scenario trace {name} has inconsistent length")

    @property
    def n_hours(self) -> int:
        """Scenario horizon in slots."""
        return len(self.load_rate)

    def build_hub(self, *, initial_soc_fraction: float = 0.5) -> EctHub:
        """A fresh hub instance for this scenario."""
        return EctHub(self.hub_config, initial_soc_fraction=initial_soc_fraction)

    def inputs_with_occupancy(
        self,
        occupied: np.ndarray,
        discount: np.ndarray,
        *,
        outage: np.ndarray | None = None,
    ) -> HubInputs:
        """Full :class:`HubInputs` once occupancy/discounts are decided."""
        return HubInputs(
            load_rate=self.load_rate,
            rtp_kwh=self.rtp_kwh,
            pv_power_kw=self.pv_power_kw,
            wt_power_kw=self.wt_power_kw,
            occupied=np.asarray(occupied, dtype=int),
            discount=np.asarray(discount, dtype=float),
            outage=outage,
        )

    def simulation(
        self,
        occupied: np.ndarray,
        discount: np.ndarray,
        *,
        initial_soc_fraction: float = 0.5,
        outage: np.ndarray | None = None,
    ) -> HubSimulation:
        """Convenience: hub + inputs + engine in one call."""
        return HubSimulation(
            self.build_hub(initial_soc_fraction=initial_soc_fraction),
            self.inputs_with_occupancy(occupied, discount, outage=outage),
            initial_soc_fraction=initial_soc_fraction,
        )


def resolve_occupancy(strata: np.ndarray, discounted: np.ndarray) -> np.ndarray:
    """Strata semantics → occupancy: Always ⇒ 1; Incentive ⇒ discounted; else 0."""
    strata = np.asarray(strata, dtype=int)
    discounted = np.asarray(discounted).astype(int)
    if strata.shape != discounted.shape:
        raise DataError(
            f"strata shape {strata.shape} != discounted shape {discounted.shape}"
        )
    return np.where(
        strata == Stratum.ALWAYS,
        1,
        np.where(strata == Stratum.INCENTIVE, discounted, 0),
    ).astype(int)


def build_scenario(
    site: HubSite,
    config: ScenarioConfig,
    rng_factory: RngFactory,
) -> HubScenario:
    """Generate one hub's scenario: traces, plants, and a sized battery."""
    stream = f"hub/{site.hub_id}"

    weather_gen = WeatherGenerator(config.weather, rng_factory)
    weather = weather_gen.generate(config.n_hours, stream=f"{stream}/weather")

    traffic_cfg = replace(
        config.traffic,
        base_gb=config.traffic.base_gb * site.traffic_scale,
        midday_peak_gb=config.traffic.midday_peak_gb * site.traffic_scale,
        evening_peak_gb=config.traffic.evening_peak_gb * site.traffic_scale,
    )
    traffic = TrafficGenerator(traffic_cfg).generate(
        config.n_hours, rng_factory.stream(f"{stream}/traffic")
    )
    prices = RtpGenerator(config.rtp).generate(
        config.n_hours,
        rng_factory.stream(f"{stream}/rtp"),
        load_rate=traffic.load_rate,
    )

    pv_config = PvConfig(rated_kw=site.pv_kw) if site.pv_kw > 0 else None
    wt_config = (
        WindTurbineConfig(rated_kw=site.wt_kw) if site.wt_kw > 0 else None
    )
    pv_power = (
        np.asarray(PvArray(pv_config).power_kw(weather.irradiance_w_m2))
        if pv_config is not None
        else np.zeros(config.n_hours)
    )
    wt_power = (
        np.asarray(WindTurbine(wt_config).power_kw(weather.wind_speed_m_s))
        if wt_config is not None
        else np.zeros(config.n_hours)
    )

    cluster = BaseStationCluster(site.n_base_stations, config.base_station)
    battery = sized_battery_config(
        config.battery, cluster, config.recovery_time_h
    )

    hub_config = HubConfig(
        battery=battery,
        base_station=config.base_station,
        n_base_stations=site.n_base_stations,
        charging_station=config.charging_station,
        pv=pv_config,
        wind_turbine=wt_config,
        c_bp_per_slot=config.c_bp_per_slot,
    )
    return HubScenario(
        site=site,
        hub_config=hub_config,
        load_rate=traffic.load_rate,
        rtp_kwh=prices.price_kwh,
        pv_power_kw=pv_power,
        wt_power_kw=wt_power,
        irradiance_w_m2=weather.irradiance_w_m2,
        wind_speed_m_s=weather.wind_speed_m_s,
    )


def build_fleet_scenarios(
    config: ScenarioConfig,
    rng_factory: RngFactory | None = None,
    *,
    n_hubs: int | None = None,
) -> list[HubScenario]:
    """Scenarios for the default fleet (paper: 12 hubs)."""
    factory = rng_factory or RngFactory(seed=0)
    sites = default_fleet(
        n_hubs if n_hubs is not None else config.charging.n_stations,
        rng_factory=factory,
    )
    return [build_scenario(site, config, factory) for site in sites]


def fleet_behavior_model(
    config: ScenarioConfig,
    rng_factory: RngFactory | None = None,
) -> ChargingBehaviorModel:
    """The fleet-wide charging behaviour model matching the scenarios."""
    factory = rng_factory or RngFactory(seed=0)
    return ChargingBehaviorModel(config.charging, factory)
