"""Operating constraints — Eqs. 5 and 6 of the paper.

Eq. 5 bounds the SoC inside ``[SoC_min, SoC_max]`` to slow degradation;
Eq. 6 requires the reserve below ``SoC_min`` to carry the base stations
through a blackout until the grid recovers (``T_r`` slots):

``Σ_{t..t+T_r} P_BS(t) ≤ SoC_min``

Since ``P_BS ≤ P_max`` always, sizing against the worst case
``SoC_min ≥ T_r · P_max · dt`` guarantees Eq. 6 for every window; a
forecast-aware variant checks the actual rolling sum.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, ConstraintViolation
from ..energy.base_station import BaseStationCluster
from ..energy.battery import BatteryConfig


def required_reserve_kwh(
    cluster: BaseStationCluster,
    recovery_time_h: int,
    *,
    dt_h: float = 1.0,
) -> float:
    """Worst-case Eq. 6 reserve: ``T_r`` slots of full-load BS draw."""
    if recovery_time_h < 0:
        raise ConfigError(f"recovery_time_h must be non-negative, got {recovery_time_h}")
    if dt_h <= 0:
        raise ConfigError(f"dt_h must be positive, got {dt_h}")
    return cluster.max_power_kw * recovery_time_h * dt_h


def reserve_satisfied(
    battery: BatteryConfig,
    cluster: BaseStationCluster,
    recovery_time_h: int,
    *,
    dt_h: float = 1.0,
) -> bool:
    """Whether the configured ``SoC_min`` meets the worst-case Eq. 6 reserve."""
    return battery.soc_min_kwh >= required_reserve_kwh(
        cluster, recovery_time_h, dt_h=dt_h
    ) - 1e-9


def validate_reserve(
    battery: BatteryConfig,
    cluster: BaseStationCluster,
    recovery_time_h: int,
    *,
    dt_h: float = 1.0,
) -> None:
    """Raise :class:`ConstraintViolation` when Eq. 6 cannot be guaranteed."""
    needed = required_reserve_kwh(cluster, recovery_time_h, dt_h=dt_h)
    if battery.soc_min_kwh < needed - 1e-9:
        raise ConstraintViolation(
            f"SoC_min of {battery.soc_min_kwh:.1f} kWh cannot cover the "
            f"Eq. 6 blackout reserve of {needed:.1f} kWh "
            f"({cluster.n_stations} BS × {cluster.config.p_max_kw:.1f} kW × "
            f"{recovery_time_h} h)"
        )


def rolling_bs_energy_kwh(
    bs_power_kw: np.ndarray,
    recovery_time_h: int,
    *,
    dt_h: float = 1.0,
) -> np.ndarray:
    """Rolling ``Σ_{t..t+T_r} P_BS`` for a forecast trace (Eq. 6 LHS).

    The window is truncated at the end of the trace, matching an outage
    that begins near the horizon boundary.
    """
    power = np.asarray(bs_power_kw, dtype=float)
    if recovery_time_h <= 0:
        raise ConfigError(f"recovery_time_h must be positive, got {recovery_time_h}")
    if dt_h <= 0:
        raise ConfigError(f"dt_h must be positive, got {dt_h}")
    n = len(power)
    cumulative = np.concatenate([[0.0], np.cumsum(power * dt_h)])
    ends = np.minimum(np.arange(n) + recovery_time_h, n)
    return cumulative[ends] - cumulative[:n]


def forecast_reserve_satisfied(
    battery: BatteryConfig,
    bs_power_kw: np.ndarray,
    recovery_time_h: int,
    *,
    dt_h: float = 1.0,
) -> bool:
    """Eq. 6 against an actual BS power forecast instead of the worst case."""
    rolling = rolling_bs_energy_kwh(bs_power_kw, recovery_time_h, dt_h=dt_h)
    return bool(len(rolling) == 0 or rolling.max() <= battery.soc_min_kwh + 1e-9)


def check_soc_bounds(soc_kwh: float, battery: BatteryConfig) -> None:
    """Assert Eq. 5 for a single SoC observation."""
    if not battery.soc_min_kwh - 1e-9 <= soc_kwh <= battery.soc_max_kwh + 1e-9:
        raise ConstraintViolation(
            f"SoC {soc_kwh:.3f} kWh outside Eq. 5 bounds "
            f"[{battery.soc_min_kwh:.3f}, {battery.soc_max_kwh:.3f}]"
        )


def sized_battery_config(
    base: BatteryConfig,
    cluster: BaseStationCluster,
    recovery_time_h: int,
    *,
    dt_h: float = 1.0,
) -> BatteryConfig:
    """A copy of ``base`` with ``SoC_min`` raised to satisfy Eq. 6 if needed."""
    needed_fraction = required_reserve_kwh(cluster, recovery_time_h, dt_h=dt_h) / base.capacity_kwh
    if needed_fraction >= base.soc_max_fraction:
        raise ConstraintViolation(
            f"battery of {base.capacity_kwh:.0f} kWh cannot hold the Eq. 6 "
            f"reserve ({needed_fraction:.0%} of capacity) below SoC_max "
            f"({base.soc_max_fraction:.0%})"
        )
    if base.soc_min_fraction >= needed_fraction:
        return base
    from ..config import replace  # local import to avoid cycles at module load

    return replace(base, soc_min_fraction=float(needed_fraction))
