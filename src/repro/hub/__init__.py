"""``repro.hub`` — the ECT-Hub core: composition, accounting, simulation.

Implements the paper's §III system model end to end: Eq. 7 power balance
(:mod:`.hub`), Eqs. 8–12 cost accounting (:mod:`.costs`), Eqs. 5–6
constraints (:mod:`.constraints`), the slot-stepping engine
(:mod:`.simulation`), and scenario assembly for the 12-hub fleet
(:mod:`.scenario`).
"""

from .constraints import (
    check_soc_bounds,
    forecast_reserve_satisfied,
    required_reserve_kwh,
    reserve_satisfied,
    rolling_bs_energy_kwh,
    sized_battery_config,
    validate_reserve,
)
from .costs import CostBook, SlotLedger, compute_slot_ledger
from .hub import EctHub, HubConfig, PowerBalance
from .scenario import (
    HubScenario,
    ScenarioConfig,
    build_fleet_scenarios,
    build_scenario,
    fleet_behavior_model,
    resolve_occupancy,
)
from .simulation import HubInputs, HubSimulation

__all__ = [
    "CostBook",
    "EctHub",
    "HubConfig",
    "HubInputs",
    "HubScenario",
    "HubSimulation",
    "PowerBalance",
    "ScenarioConfig",
    "SlotLedger",
    "build_fleet_scenarios",
    "build_scenario",
    "check_soc_bounds",
    "compute_slot_ledger",
    "fleet_behavior_model",
    "forecast_reserve_satisfied",
    "required_reserve_kwh",
    "reserve_satisfied",
    "resolve_occupancy",
    "rolling_bs_energy_kwh",
    "sized_battery_config",
    "validate_reserve",
]
