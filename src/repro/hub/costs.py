"""Cost and revenue accounting — Eqs. 8–12 of the paper.

Per slot:

* battery operating cost  ``C_BP(t) = |S_BP(t)| · c_BP``            (Eq. 8)
* grid energy cost        ``C_grid(t) = P_grid(t) · RTP(t)``        (Eq. 9)
* charging revenue        ``P_CS(t) · SRTP(t)``                     (Eq. 11)

and over a horizon the operator's objective (Eq. 12):

``Ψ = Σ_t [ P_CS·SRTP − P_grid·RTP − |S_BP|·c_BP ] = CR − OC``.

:class:`SlotLedger` captures one fully-resolved slot; :class:`CostBook`
accumulates ledgers and exposes ``OC`` (Eq. 10), ``CR`` (Eq. 11), and the
profit ``Ψ``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import HubError


@dataclass(frozen=True)
class SlotLedger:
    """Everything that happened in one simulated slot.

    Power values are bus-side kW; monetary values are $ for the slot.
    ``reward`` is the Eq. 12 summand (also the DRL reward ``r_t``).
    """

    slot: int
    action: int
    p_bs_kw: float
    p_cs_kw: float
    p_bp_kw: float
    p_pv_kw: float
    p_wt_kw: float
    p_grid_kw: float
    surplus_kw: float
    rtp_kwh: float
    srtp_kwh: float
    soc_kwh: float
    grid_cost: float
    bp_cost: float
    revenue: float
    blackout: bool = False
    unserved_kwh: float = 0.0

    @property
    def reward(self) -> float:
        """Eq. 12 summand: revenue − grid cost − battery cost."""
        return self.revenue - self.grid_cost - self.bp_cost

    def energy_balance_error_kwh(self, dt_h: float = 1.0) -> float:
        """Residual of the Eq. 7 bus balance (should be ~0 off-blackout)."""
        supply = self.p_grid_kw + self.p_pv_kw + self.p_wt_kw + max(-self.p_bp_kw, 0.0)
        demand = (
            self.p_bs_kw
            + self.p_cs_kw
            + max(self.p_bp_kw, 0.0)
            + self.surplus_kw
        )
        return (supply - demand) * dt_h


def compute_slot_ledger(
    *,
    slot: int,
    action: int,
    p_bs_kw: float,
    p_cs_kw: float,
    p_bp_kw: float,
    p_pv_kw: float,
    p_wt_kw: float,
    p_grid_kw: float,
    surplus_kw: float,
    rtp_kwh: float,
    srtp_kwh: float,
    soc_kwh: float,
    c_bp_per_slot: float,
    dt_h: float,
    blackout: bool = False,
    unserved_kwh: float = 0.0,
) -> SlotLedger:
    """Assemble a :class:`SlotLedger`, applying Eqs. 8, 9, and 11."""
    if dt_h <= 0:
        raise HubError(f"dt_h must be positive, got {dt_h}")
    if rtp_kwh < 0 or srtp_kwh < 0:
        raise HubError("prices must be non-negative")
    bp_active = 1.0 if action != 0 else 0.0
    return SlotLedger(
        slot=slot,
        action=action,
        p_bs_kw=p_bs_kw,
        p_cs_kw=p_cs_kw,
        p_bp_kw=p_bp_kw,
        p_pv_kw=p_pv_kw,
        p_wt_kw=p_wt_kw,
        p_grid_kw=p_grid_kw,
        surplus_kw=surplus_kw,
        rtp_kwh=rtp_kwh,
        srtp_kwh=srtp_kwh,
        soc_kwh=soc_kwh,
        grid_cost=p_grid_kw * dt_h * rtp_kwh,
        bp_cost=bp_active * c_bp_per_slot,
        revenue=p_cs_kw * dt_h * srtp_kwh,
        blackout=blackout,
        unserved_kwh=unserved_kwh,
    )


@dataclass
class CostBook:
    """Accumulates slot ledgers into the paper's aggregate quantities.

    ``voll_per_kwh`` is the value-of-lost-load penalty: Eq. 12 profit
    charges every unserved kWh at this rate, so reliability failures cost
    money instead of silently *raising* profit (unserved load means less
    grid import). Zero — the paper's literal objective — by default.
    """

    ledgers: list[SlotLedger] = field(default_factory=list)
    voll_per_kwh: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.voll_per_kwh) or self.voll_per_kwh < 0:
            raise HubError(
                f"voll_per_kwh must be finite and non-negative, got "
                f"{self.voll_per_kwh}"
            )

    def add(self, ledger: SlotLedger) -> None:
        """Record one slot."""
        self.ledgers.append(ledger)

    def __len__(self) -> int:
        return len(self.ledgers)

    @property
    def operating_cost(self) -> float:
        """Eq. 10: ``OC = Σ_t [C_grid(t) + C_BP(t)]``."""
        return sum(l.grid_cost + l.bp_cost for l in self.ledgers)

    @property
    def charging_revenue(self) -> float:
        """Eq. 11: ``CR = Σ_t P_CS(t) · SRTP(t)``."""
        return sum(l.revenue for l in self.ledgers)

    @property
    def voll_cost(self) -> float:
        """Value-of-lost-load penalty over the horizon."""
        return self.voll_per_kwh * self.total_unserved_kwh

    @property
    def profit(self) -> float:
        """Eq. 12 plus the lost-load penalty: ``Ψ = CR − OC − VoLL·unserved``."""
        return self.charging_revenue - self.operating_cost - self.voll_cost

    @property
    def total_grid_energy_kwh(self) -> float:
        """Energy imported over the horizon (assumes uniform slots of 1 h)."""
        return sum(l.p_grid_kw for l in self.ledgers)

    @property
    def total_curtailed_kwh(self) -> float:
        """Renewable energy curtailed over the horizon."""
        return sum(l.surplus_kw for l in self.ledgers)

    @property
    def total_unserved_kwh(self) -> float:
        """BS energy that could not be served during blackouts."""
        return sum(l.unserved_kwh for l in self.ledgers)

    def daily_rewards(self, slots_per_day: int = 24) -> list[float]:
        """Eq. 12 profit aggregated per day (the paper's Fig. 13 series)."""
        if slots_per_day <= 0:
            raise HubError(f"slots_per_day must be positive, got {slots_per_day}")
        rewards: list[float] = []
        for start in range(0, len(self.ledgers), slots_per_day):
            chunk = self.ledgers[start : start + slots_per_day]
            rewards.append(
                sum(l.reward - self.voll_per_kwh * l.unserved_kwh for l in chunk)
            )
        return rewards
