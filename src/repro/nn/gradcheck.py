"""Numerical gradient checking for the autograd engine.

Used heavily by the test suite: any differentiable scalar function of
tensors can be verified against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import ModelError
from .autograd import Tensor


def numerical_gradient(
    fn: Callable[[], Tensor],
    tensor: Tensor,
    *,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        f_plus = fn().item()
        flat[i] = original - eps
        f_minus = fn().item()
        flat[i] = original
        grad_flat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[[], Tensor],
    tensors: Sequence[Tensor],
    *,
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-4,
) -> None:
    """Assert that autograd gradients of ``fn`` match finite differences.

    ``fn`` must be a nullary callable re-evaluating the scalar loss from the
    given tensors; it is called repeatedly while entries are perturbed.
    Raises :class:`ModelError` on mismatch with a diagnostic message.
    """
    for tensor in tensors:
        tensor.zero_grad()
    loss = fn()
    if loss.size != 1:
        raise ModelError(f"check_gradients requires a scalar loss, got {loss.shape}")
    loss.backward()

    for index, tensor in enumerate(tensors):
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, tensor, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise ModelError(
                f"gradient mismatch on tensor #{index} (shape {tensor.shape}): "
                f"max abs diff {worst:.3e}\nanalytic:\n{analytic}\nnumeric:\n{numeric}"
            )
