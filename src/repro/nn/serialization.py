"""Save / load module weights as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import ModelError
from .module import Module


def save_module(module: Module, path: str | Path) -> None:
    """Write a module's state dict to an ``.npz`` file."""
    state = module.state_dict()
    if not state:
        raise ModelError("module has no parameters to save")
    np.savez(Path(path), **state)


def load_module(module: Module, path: str | Path) -> None:
    """Load weights saved by :func:`save_module` into ``module`` in place."""
    path = Path(path)
    if not path.exists():
        # np.savez appends .npz when missing; accept either spelling.
        alt = path.with_suffix(path.suffix + ".npz")
        if alt.exists():
            path = alt
        else:
            raise ModelError(f"no weights file at {path}")
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
