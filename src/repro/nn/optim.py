"""Optimizers: SGD (with momentum), Adam, and AdamW.

The paper trains every model with Adam plus weight decay 1e-4 (§V-A). Adam
here implements classic L2-coupled decay (decay added to the gradient);
AdamW implements decoupled decay. Both are provided so the difference can be
ablated.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ModelError
from .autograd import Tensor


class Optimizer:
    """Base optimizer: holds parameters and clears their gradients."""

    def __init__(self, parameters: Sequence[Tensor], lr: float) -> None:
        self.parameters = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ModelError("optimizer received no trainable parameters")
        if lr <= 0:
            raise ModelError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradient buffers on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update; subclasses implement."""
        raise NotImplementedError

    def _grads(self) -> list[np.ndarray]:
        grads = []
        for param in self.parameters:
            grads.append(param.grad if param.grad is not None else np.zeros_like(param.data))
        return grads


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 0.01,
        *,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ModelError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, grad, velocity in zip(self.parameters, self._grads(), self._velocity):
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam with L2-coupled weight decay (the paper's training setup)."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-3,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ModelError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, grad, m, v in zip(self.parameters, self._grads(), self._m, self._v):
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        if self.weight_decay:
            for param in self.parameters:
                param.data -= self.lr * self.weight_decay * param.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


def clip_grad_norm(parameters: Sequence[Tensor], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for training diagnostics).
    """
    if max_norm <= 0:
        raise ModelError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float((grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm
