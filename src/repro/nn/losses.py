"""Loss functions used across the paper's models.

All losses reduce to scalar tensors (mean over the batch) so callers can do
``loss.backward()`` directly. The CF-MTL objective (paper Eq. 23) is a sum
of MSE terms over probability products; the generic pieces live here and the
model-specific assembly lives in :mod:`repro.causal.ect_price`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .autograd import Tensor, ensure_tensor


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error over all elements (the paper's ``L(·,·)``)."""
    prediction = ensure_tensor(prediction)
    target = ensure_tensor(target)
    if prediction.shape != target.shape:
        raise ModelError(
            f"mse_loss shape mismatch: prediction {prediction.shape} vs "
            f"target {target.shape}"
        )
    diff = prediction - target
    return (diff * diff).mean()


def bce_loss(probability: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Binary cross-entropy on probabilities (not logits)."""
    probability = ensure_tensor(probability)
    target = ensure_tensor(target)
    if probability.shape != target.shape:
        raise ModelError(
            f"bce_loss shape mismatch: probability {probability.shape} vs "
            f"target {target.shape}"
        )
    p = probability.clip(1e-7, 1.0 - 1e-7)
    losses = -(target * p.log() + (1.0 - target) * (1.0 - p).log())
    return losses.mean()


def bce_with_logits(logits: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Binary cross-entropy on raw logits (numerically stable form)."""
    logits = ensure_tensor(logits)
    target = ensure_tensor(target)
    # max(z, 0) - z*y + log(1 + exp(-|z|))
    zeros = Tensor(np.zeros_like(logits.data))
    abs_z = logits.maximum(-logits)
    losses = logits.maximum(zeros) - logits * target + ((-abs_z).exp() + 1.0).log()
    return losses.mean()


def cross_entropy(logits: Tensor, class_ids: np.ndarray) -> Tensor:
    """Categorical cross-entropy from logits and integer class labels."""
    logits = ensure_tensor(logits)
    ids = np.asarray(class_ids, dtype=int)
    if logits.ndim != 2 or ids.shape != (logits.shape[0],):
        raise ModelError(
            f"cross_entropy expects (batch, classes) logits and (batch,) ids; "
            f"got {logits.shape} and {ids.shape}"
        )
    log_probs = logits.log_softmax(axis=-1)
    picked = log_probs.select_columns(ids)
    return -picked.mean()


def entropy_of_logits(logits: Tensor) -> Tensor:
    """Mean Shannon entropy of the categorical distributions in ``logits``.

    Used as the optional exploration bonus in the PPO objective.
    """
    logits = ensure_tensor(logits)
    log_probs = logits.log_softmax(axis=-1)
    probs = log_probs.exp()
    return -(probs * log_probs).sum(axis=-1).mean()
