"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so layer
construction is reproducible through :class:`repro.rng.RngFactory` streams.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero array (bias default)."""
    return np.zeros(shape, dtype=float)


def normal(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    *,
    std: float = 0.01,
) -> np.ndarray:
    """Gaussian init with the given standard deviation (embedding default)."""
    if std <= 0:
        raise ModelError(f"std must be positive, got {std}")
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init for (fan_in, fan_out) weight matrices."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform init, suited to ReLU networks."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    *,
    gain: float = 1.0,
) -> np.ndarray:
    """Orthogonal init (PPO-style policy/value head initialization)."""
    if len(shape) != 2:
        raise ModelError(f"orthogonal init requires a 2-D shape, got {shape}")
    rows, cols = shape
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))
    q = q[:rows, :cols] if q.shape != shape else q
    if q.shape != shape:
        q = q.T[:rows, :cols]
    return gain * q


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    raise ModelError(f"initializers support 1-D/2-D shapes, got {shape}")
