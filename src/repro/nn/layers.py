"""Layers: Linear, Embedding, activations, Dropout, Sequential, MLP.

Every layer takes an explicit RNG for weight init so model construction is
deterministic under :class:`repro.rng.RngFactory`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import ModelError
from . import init
from .autograd import Tensor, concat, ensure_tensor
from .module import Module


class Linear(Module):
    """Affine map ``y = x W + b`` with ``W`` of shape (in_features, out_features)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        *,
        bias: bool = True,
        initializer: Callable[[tuple[int, ...], np.random.Generator], np.ndarray] = init.he_uniform,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ModelError(
                f"Linear dims must be positive, got ({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(initializer((in_features, out_features), rng), requires_grad=True)
        self.bias = Tensor(init.zeros((out_features,)), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = ensure_tensor(x)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator,
        *,
        std: float = 0.05,
    ) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ModelError(
                f"Embedding dims must be positive, got ({num_embeddings}, {embedding_dim})"
            )
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Tensor(
            init.normal((num_embeddings, embedding_dim), rng, std=std), requires_grad=True
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=int)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise ModelError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        return self.weight.gather_rows(ids)


class ReLU(Module):
    """Rectified linear activation layer."""

    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).relu()


class Tanh(Module):
    """Hyperbolic tangent activation layer."""

    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).tanh()


class Sigmoid(Module):
    """Logistic sigmoid activation layer."""

    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).sigmoid()


class Dropout(Module):
    """Inverted dropout; identity when the module is in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ModelError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        x = ensure_tensor(x)
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(float) / keep
        return x * Tensor(mask)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.steps = list(modules)

    def forward(self, x) -> Tensor:
        for step in self.steps:
            x = step(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return self.steps[index]

    def __len__(self) -> int:
        return len(self.steps)


class MLP(Module):
    """Multi-layer perceptron with a uniform hidden activation.

    Parameters
    ----------
    sizes:
        Layer widths including input and output, e.g. ``(8, 64, 64, 3)``.
    activation:
        Hidden activation factory (default :class:`ReLU`).
    output_activation:
        Optional activation applied after the final linear layer.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        *,
        activation: Callable[[], Module] = ReLU,
        output_activation: Callable[[], Module] | None = None,
    ) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ModelError(f"MLP needs at least input and output sizes, got {sizes}")
        steps: list[Module] = []
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            last = i == len(sizes) - 2
            initializer = init.xavier_uniform if last else init.he_uniform
            steps.append(Linear(fan_in, fan_out, rng, initializer=initializer))
            if not last:
                steps.append(activation())
        if output_activation is not None:
            steps.append(output_activation())
        self.body = Sequential(*steps)

    def forward(self, x) -> Tensor:
        return self.body(x)


def concat_features(parts: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate feature tensors along the last axis (thin re-export)."""
    return concat(list(parts), axis=axis)
