"""Module base class: parameter registration, train/eval mode, state dicts.

Mirrors the familiar PyTorch contract at the scale this project needs:
attributes that are :class:`~repro.nn.autograd.Tensor` with
``requires_grad=True`` are parameters; attributes that are Modules (or lists
of Modules) recurse.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ModelError
from .autograd import Tensor


class Module:
    """Base class for all neural network modules."""

    def __init__(self) -> None:
        self._training = True

    # ------------------------------------------------------------------ #
    # Parameter discovery                                                 #
    # ------------------------------------------------------------------ #

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, value in vars(self).items():
            if name.startswith("_"):
                continue
            path = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{path}.{index}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{path}.{index}", item

    def parameters(self) -> list[Tensor]:
        """All trainable parameters of this module tree."""
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # Train / eval mode                                                   #
    # ------------------------------------------------------------------ #

    @property
    def training(self) -> bool:
        """Whether the module is in training mode (affects e.g. Dropout)."""
        return self._training

    def train(self) -> "Module":
        """Switch this module tree to training mode."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Switch this module tree to inference mode."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self._training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    # ------------------------------------------------------------------ #
    # State dict                                                          #
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters in-place; shapes and names must match exactly."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise ModelError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in params.items():
            incoming = np.asarray(state[name], dtype=float)
            if incoming.shape != param.data.shape:
                raise ModelError(
                    f"shape mismatch for {name}: "
                    f"expected {param.data.shape}, got {incoming.shape}"
                )
            param.data[...] = incoming

    # ------------------------------------------------------------------ #
    # Call protocol                                                       #
    # ------------------------------------------------------------------ #

    def forward(self, *args, **kwargs):
        """Subclasses implement the computation here."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
