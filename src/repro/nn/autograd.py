"""Reverse-mode automatic differentiation on numpy arrays.

This is the neural substrate for the paper's learned components (the NCF
base model, the CF-MTL ECT-Price model, and the PPO actor-critic): a small
tape-based autograd engine in the style of micrograd/PyTorch, sufficient for
MLPs with embeddings, softmax policies, and clipped-surrogate losses.

Design notes
------------
* A :class:`Tensor` wraps an ``ndarray`` (always float64 unless the caller
  passes another dtype) plus an optional gradient buffer.
* Each op records a backward closure over its parents; ``backward()`` runs a
  topological sort and accumulates gradients.
* Broadcasting is supported in forward ops; backward passes reduce gradients
  back to each parent's shape via :func:`_unbroadcast`.
* No in-place mutation of ``data`` after an op has consumed it — optimizers
  update parameters between backward passes, which is safe because the tape
  is rebuilt each forward pass.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..errors import ModelError

ArrayLike = "np.ndarray | float | int | Sequence"

#: Inputs to exp/sigmoid are clipped to this magnitude to avoid overflow.
_EXP_CLIP = 60.0


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode gradient support.

    Parameters
    ----------
    data:
        Array (or scalar / nested sequence) holding the values.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
    ) -> None:
        self.data = np.asarray(data, dtype=float)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents = _parents

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag})"

    def item(self) -> float:
        """The value of a single-element tensor as a python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise_not_scalar(self)

    def numpy(self) -> np.ndarray:
        """The raw ndarray (shared, do not mutate while a tape is alive)."""
        return self.data

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------ #
    # Graph machinery                                                     #
    # ------------------------------------------------------------------ #

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient buffer."""
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        ``grad`` defaults to 1 for scalar outputs; non-scalar roots require
        an explicit seed gradient of matching shape.
        """
        if grad is None:
            if self.data.size != 1:
                raise ModelError(
                    "backward() without an explicit gradient requires a scalar "
                    f"output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=float)
            if grad.shape != self.data.shape:
                raise ModelError(
                    f"seed gradient shape {grad.shape} != tensor shape {self.shape}"
                )

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Arithmetic                                                          #
    # ------------------------------------------------------------------ #

    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = ensure_tensor(other)
        out = _make(self.data + other_t.data, (self, other_t))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad, other_t.data.shape))

        out._backward = backward if out.requires_grad else None
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = _make(-self.data, (self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        out._backward = backward if out.requires_grad else None
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-ensure_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = ensure_tensor(other)
        out = _make(self.data * other_t.data, (self, other_t))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other_t.data, self.data.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad * self.data, other_t.data.shape))

        out._backward = backward if out.requires_grad else None
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = ensure_tensor(other)
        out = _make(self.data / other_t.data, (self, other_t))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other_t.data, self.data.shape))
            if other_t.requires_grad:
                other_t._accumulate(
                    _unbroadcast(-grad * self.data / other_t.data**2, other_t.data.shape)
                )

        out._backward = backward if out.requires_grad else None
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise ModelError("only scalar exponents are supported in Tensor.__pow__")
        out = _make(self.data**exponent, (self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        out._backward = backward if out.requires_grad else None
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = ensure_tensor(other)
        out = _make(self.data @ other_t.data, (self, other_t))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    # matrix @ vector (grad 1-D) or vector @ vector (grad 0-D)
                    self._accumulate(
                        np.outer(grad, other_t.data) if grad.ndim else grad * other_t.data
                    )
                else:
                    self._accumulate(grad @ other_t.data.T)
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    # vector @ matrix (grad 1-D) or vector @ vector (grad 0-D)
                    other_t._accumulate(
                        np.outer(self.data, grad) if grad.ndim else grad * self.data
                    )
                else:
                    other_t._accumulate(self.data.T @ grad)

        out._backward = backward if out.requires_grad else None
        return out

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities                                          #
    # ------------------------------------------------------------------ #

    def exp(self) -> "Tensor":
        """Elementwise exponential (input clipped to ±60 for stability)."""
        value = np.exp(np.clip(self.data, -_EXP_CLIP, _EXP_CLIP))
        out = _make(value, (self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * value)

        out._backward = backward if out.requires_grad else None
        return out

    def log(self) -> "Tensor":
        """Elementwise natural log; inputs are floored at 1e-12."""
        safe = np.maximum(self.data, 1e-12)
        out = _make(np.log(safe), (self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / safe)

        out._backward = backward if out.requires_grad else None
        return out

    def relu(self) -> "Tensor":
        """Rectified linear unit."""
        mask = self.data > 0
        out = _make(self.data * mask, (self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        out._backward = backward if out.requires_grad else None
        return out

    def tanh(self) -> "Tensor":
        """Hyperbolic tangent."""
        value = np.tanh(self.data)
        out = _make(value, (self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - value**2))

        out._backward = backward if out.requires_grad else None
        return out

    def sigmoid(self) -> "Tensor":
        """Logistic sigmoid with overflow-safe evaluation."""
        clipped = np.clip(self.data, -_EXP_CLIP, _EXP_CLIP)
        value = 1.0 / (1.0 + np.exp(-clipped))
        out = _make(value, (self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * value * (1.0 - value))

        out._backward = backward if out.requires_grad else None
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to [low, high]; gradient is 1 strictly inside."""
        value = np.clip(self.data, low, high)
        inside = (self.data > low) & (self.data < high)
        out = _make(value, (self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * inside)

        out._backward = backward if out.requires_grad else None
        return out

    # ------------------------------------------------------------------ #
    # Reductions and shape ops                                            #
    # ------------------------------------------------------------------ #

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when None)."""
        out = _make(self.data.sum(axis=axis, keepdims=keepdims), (self,))

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        out._backward = backward if out.requires_grad else None
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis``."""
        count = self.data.size if axis is None else _axis_size(self.data.shape, axis)
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        """Reshape preserving the tape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = _make(self.data.reshape(shape), (self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        out._backward = backward if out.requires_grad else None
        return out

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        """Permute axes (reverse when ``axes`` is None)."""
        out = _make(self.data.transpose(axes), (self,))

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axes is None:
                self._accumulate(grad.transpose())
            else:
                inverse = np.argsort(axes)
                self._accumulate(grad.transpose(inverse))

        out._backward = backward if out.requires_grad else None
        return out

    @property
    def T(self) -> "Tensor":  # noqa: N802 - numpy-style alias
        """Transpose (2-D convenience alias)."""
        return self.transpose()

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Select rows by integer index (embedding lookup).

        ``indices`` is a 1-D integer array; output shape is
        ``(len(indices),) + self.shape[1:]``. The backward pass scatter-adds.
        """
        idx = np.asarray(indices, dtype=int)
        if idx.ndim != 1:
            raise ModelError(f"gather_rows expects 1-D indices, got shape {idx.shape}")
        out = _make(self.data[idx], (self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                buffer = np.zeros_like(self.data)
                np.add.at(buffer, idx, grad)
                self._accumulate(buffer)

        out._backward = backward if out.requires_grad else None
        return out

    def select_columns(self, indices: np.ndarray) -> "Tensor":
        """Pick one column per row: ``out[i] = self[i, indices[i]]``.

        Used to extract the log-probability of the taken action from a
        ``(batch, n_actions)`` policy output. Returns shape ``(batch,)``.
        """
        idx = np.asarray(indices, dtype=int)
        if self.data.ndim != 2 or idx.shape != (self.data.shape[0],):
            raise ModelError(
                "select_columns expects a 2-D tensor and per-row indices; got "
                f"tensor {self.shape}, indices {idx.shape}"
            )
        rows = np.arange(self.data.shape[0])
        out = _make(self.data[rows, idx], (self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                buffer = np.zeros_like(self.data)
                np.add.at(buffer, (rows, idx), grad)
                self._accumulate(buffer)

        out._backward = backward if out.requires_grad else None
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable log-softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        value = shifted - log_norm
        out = _make(value, (self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                softmax = np.exp(value)
                self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        out._backward = backward if out.requires_grad else None
        return out

    def softmax(self, axis: int = -1) -> "Tensor":
        """Softmax along ``axis`` (computed as ``exp(log_softmax)``)."""
        return self.log_softmax(axis=axis).exp()

    def maximum(self, other: ArrayLike) -> "Tensor":
        """Elementwise maximum; gradient follows the winning operand."""
        other_t = ensure_tensor(other)
        take_self = self.data >= other_t.data
        out = _make(np.where(take_self, self.data, other_t.data), (self, other_t))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * take_self, self.data.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad * ~take_self, other_t.data.shape))

        out._backward = backward if out.requires_grad else None
        return out

    def minimum(self, other: ArrayLike) -> "Tensor":
        """Elementwise minimum; gradient follows the winning operand."""
        other_t = ensure_tensor(other)
        take_self = self.data <= other_t.data
        out = _make(np.where(take_self, self.data, other_t.data), (self, other_t))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * take_self, self.data.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad * ~take_self, other_t.data.shape))

        out._backward = backward if out.requires_grad else None
        return out


def _raise_not_scalar(tensor: Tensor) -> float:
    raise ModelError(f"item() requires a single-element tensor, got shape {tensor.shape}")


def _axis_size(shape: tuple[int, ...], axis: int | tuple[int, ...]) -> int:
    if isinstance(axis, tuple):
        size = 1
        for a in axis:
            size *= shape[a]
        return size
    return shape[axis]


def _make(data: np.ndarray, parents: tuple[Tensor, ...]) -> Tensor:
    requires = any(p.requires_grad for p in parents)
    return Tensor(data, requires_grad=requires, _parents=parents if requires else ())


def ensure_tensor(value: ArrayLike | Tensor) -> Tensor:
    """Wrap ``value`` in a constant :class:`Tensor` unless it already is one."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``, preserving gradients."""
    tensors = [ensure_tensor(t) for t in tensors]
    if not tensors:
        raise ModelError("concat requires at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = _make(data, tuple(tensors))

    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    out._backward = backward if out.requires_grad else None
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack equal-shaped tensors along a new axis."""
    tensors = [ensure_tensor(t) for t in tensors]
    if not tensors:
        raise ModelError("stack requires at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)
    out = _make(data, tuple(tensors))

    def backward(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    out._backward = backward if out.requires_grad else None
    return out


def parameters_of(tensors: Iterable[Tensor]) -> list[Tensor]:
    """Filter an iterable down to the tensors that require gradients."""
    return [t for t in tensors if t.requires_grad]
