"""``repro.nn`` — a from-scratch numpy autograd / neural-network substrate.

The paper trains its models (NCF labeler, CF-MTL ECT-Price, PPO ECT-DRL) in
PyTorch; this package provides the equivalent primitives offline: a
reverse-mode autograd :class:`Tensor`, layers, losses, and optimizers.
"""

from .autograd import Tensor, concat, ensure_tensor, stack
from .gradcheck import check_gradients, numerical_gradient
from .layers import (
    MLP,
    Dropout,
    Embedding,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .losses import (
    bce_loss,
    bce_with_logits,
    cross_entropy,
    entropy_of_logits,
    mse_loss,
)
from .module import Module
from .optim import SGD, Adam, AdamW, Optimizer, clip_grad_norm
from .serialization import load_module, save_module

__all__ = [
    "MLP",
    "Adam",
    "AdamW",
    "Dropout",
    "Embedding",
    "Linear",
    "Module",
    "Optimizer",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "Tensor",
    "bce_loss",
    "bce_with_logits",
    "check_gradients",
    "clip_grad_norm",
    "concat",
    "cross_entropy",
    "ensure_tensor",
    "entropy_of_logits",
    "load_module",
    "mse_loss",
    "numerical_gradient",
    "save_module",
    "stack",
]
